"""Bit-packed symplectic (GF(2)) arithmetic shared by the stabilizer backend.

Pauli rows are stored as ``uint64`` words, 64 qubits per word: qubit ``q``
lives in bit ``q % 64`` of word ``q // 64`` (little-endian within the row).
All hot-path arithmetic — anticommutation tests, stabilizer decompositions,
product phases — then reduces to word-wise AND/XOR plus ``np.bitwise_count``
popcounts, which is what makes evaluating whole batches of CAFQA candidate
points cheap: one Pauli-sum evaluation is a handful of GF(2) matmuls over
``(batch, terms, generators, words)`` arrays instead of nested Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError

WORD_BITS = 64


def num_words(num_qubits: int) -> int:
    """Number of uint64 words needed to hold one bit per qubit."""
    return (int(num_qubits) + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack boolean vectors along the last axis into uint64 words.

    ``(..., n)`` bool -> ``(..., num_words(n))`` uint64, with bit ``q % 64``
    of word ``q // 64`` holding qubit ``q``.
    """
    bits = np.asarray(bits, dtype=bool)
    words = num_words(bits.shape[-1])
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = words * (WORD_BITS // 8) - packed.shape[-1]
    if pad:
        padding = np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)
        packed = np.concatenate([packed, padding], axis=-1)
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(packed: np.ndarray, num_qubits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., W)`` uint64 -> ``(..., n)`` bool."""
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :num_qubits].astype(bool)


def _popcount_swar(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via SWAR bit tricks (NumPy 1.x fallback)."""
    v = words.astype(np.uint64, copy=True)
    v -= (v >> np.uint64(1)) & np.uint64(0x5555555555555555)
    v = (v & np.uint64(0x3333333333333333)) + (
        (v >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return (v * np.uint64(0x0101010101010101)) >> np.uint64(56)


_popcount = getattr(np, "bitwise_count", _popcount_swar)


def bit_counts(words: np.ndarray) -> np.ndarray:
    """Total popcount along the last (word) axis, as signed int64."""
    return _popcount(words).sum(axis=-1, dtype=np.int64)


def pauli_product_phase(
    x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray
) -> np.ndarray:
    """Power of ``i`` (mod 4) from multiplying Pauli row 1 by row 2.

    Rows are packed symplectic vectors in the *literal* convention, where
    ``x = z = 1`` on a qubit means ``Y`` (not ``XZ``).  This is the closed
    form of summing Aaronson–Gottesman's per-qubit ``g`` function: writing
    each row as ``i^y X^x Z^z`` with ``y`` its Y-count, the product picks up
    ``i^(y1 + y2 - y12)`` from the Y bookkeeping and ``(-1)^(z1.x2)`` from
    commuting ``Z^z1`` past ``X^x2``.  Broadcasts over leading axes; the last
    axis must be the word axis.
    """
    y1 = bit_counts(x1 & z1)
    y2 = bit_counts(x2 & z2)
    y12 = bit_counts((x1 ^ x2) & (z1 ^ z2))
    cross = bit_counts(z1 & x2)
    return (y1 + y2 - y12 + 2 * cross) % 4


def _row_weights(stab_x: np.ndarray, stab_z: np.ndarray, stab_signs: np.ndarray):
    """Per-generator linear phase weights ``y_i + 2 * sign_i``: ``(B, n)`` float32.

    Each participating stabilizer row ``i`` contributes its Y-count plus twice
    its sign bit to the product phase (mod 4); the weights depend only on the
    state, so grouped evaluation computes them once per batch chunk.
    """
    y_rows = bit_counts(stab_x & stab_z)  # (B, n)
    return (y_rows + 2 * stab_signs).astype(np.float32)


def _pairwise_cross(stab_z: np.ndarray, stab_x: np.ndarray) -> np.ndarray:
    """Pairwise reordering parities ``z_i.x_j`` for ``i < j``: ``(B, n, n)`` float32.

    The strictly-upper-triangular matrix of anticommutation-style parities
    between stabilizer rows, in row order of the ordered product.  State-only,
    shared across every term and every commuting group.
    """
    cross = bit_counts(stab_z[:, :, None] & stab_x[:, None, :]) & 1  # (B, n, n)
    return np.triu(cross, k=1).astype(np.float32)


def stabilizer_expectations(
    stab_x: np.ndarray,
    stab_z: np.ndarray,
    stab_signs: np.ndarray,
    destab_x: np.ndarray,
    destab_z: np.ndarray,
    term_x: np.ndarray,
    term_z: np.ndarray,
) -> np.ndarray:
    """Expectations of ``T`` Pauli terms in ``B`` stabilizer states.

    Parameters are packed bit matrices: ``stab_*``/``destab_*`` have shape
    ``(B, n, W)`` (uint64), ``stab_signs`` shape ``(B, n)`` (bool), and
    ``term_*`` shape ``(T, W)``.  Returns an ``(B, T)`` int8 array with every
    entry in ``{-1, 0, +1}``.

    A term anticommuting with any stabilizer generator has expectation 0.
    Otherwise (+/-)P is in the stabilizer group and its decomposition over
    the generators is read off the destabilizers: generator ``i``
    participates iff P anticommutes with destabilizer ``i``.  The sign of
    the ordered product of the participating rows is computed in closed form
    rather than by sequential accumulation — iterating
    :func:`pauli_product_phase` over rows ``i1 < i2 < ...`` telescopes to

        ``phase = sum_i y_i - y_P + 2 * sum_{i<j} z_i.x_j  (mod 4)``

    where ``y_i`` is row ``i``'s Y-count and ``y_P`` the Y-count of the
    accumulated product, which for a commuting term is ``(+/-)P`` itself (the
    stabilizer group is maximal abelian), so ``y_P`` is a per-term constant.
    Anticommutation parities use ``parity(a) + parity(b) = parity(a ^ b)``
    to halve the popcount passes, and the quadratic pairing term runs as a
    float32 BLAS matmul; both keep every intermediate an exact small integer.
    """
    if stab_x.ndim != 3 or term_x.ndim != 2:
        raise SimulationError("stabilizer_expectations expects packed (B, n, W) rows")
    tx = term_x[None, :, None, :]
    tz = term_z[None, :, None, :]

    anti = bit_counts((tz & stab_x[:, None]) ^ (tx & stab_z[:, None])) & 1
    commutes = ~anti.astype(bool).any(axis=2)

    participates = (
        bit_counts((tz & destab_x[:, None]) ^ (tx & destab_z[:, None])) & 1
    ).astype(np.float32)  # (B, T, n), entries 0.0/1.0

    # Linear part: each participating row i contributes y_i + 2 * sign_i.
    row_weights = _row_weights(stab_x, stab_z, stab_signs)
    linear = participates @ row_weights[..., None]  # (B, T, 1)

    # Pairwise reordering signs z_i.x_j for i < j (row order of the product).
    cross = _pairwise_cross(stab_z, stab_x)
    pair = ((participates @ cross) * participates).sum(axis=2)

    y_term = bit_counts(term_x & term_z)  # (T,)
    phase = (
        linear[..., 0].astype(np.int64) + 2 * pair.astype(np.int64) - y_term[None]
    ) % 4

    if np.any(commutes & (phase & 1).astype(bool)):
        raise SimulationError("internal error: stabilizer decomposition mismatch")
    return np.where(commutes, np.where(phase == 0, 1, -1), 0).astype(np.int8)


@dataclass(frozen=True)
class GroupReductionContext:
    """State-only quantities shared by every commuting group of one chunk.

    Built once per batch chunk by :func:`group_reduction_context`; the
    per-group kernel :func:`stabilizer_group_expectations` then only pays for
    what actually varies between groups.  Generator bits are kept *unpacked*
    and stacked — ``gen_x``/``gen_z`` hold the ``n`` stabilizer rows followed
    by the ``n`` destabilizer rows, ``(B, 2n, nq)`` bool — so each group's
    anticommutation *and* participation parities come out of one fused
    boolean matmul against the terms' support masks.
    """

    gen_x: np.ndarray  # (B, 2n, nq) bool: stabilizer rows, then destabilizers
    gen_z: np.ndarray  # (B, 2n, nq) bool
    row_weights: np.ndarray  # (B, n) float32
    cross: np.ndarray  # (B, n, n) float32
    num_qubits: int

    @property
    def batch(self) -> int:
        return self.gen_x.shape[0]

    @property
    def num_rows(self) -> int:
        """Number of stabilizer generators (half the stacked row count)."""
        return self.row_weights.shape[1]


def group_reduction_context(
    stab_x: np.ndarray,
    stab_z: np.ndarray,
    stab_signs: np.ndarray,
    destab_x: np.ndarray,
    destab_z: np.ndarray,
    num_qubits: int,
) -> GroupReductionContext:
    """Precompute the per-state inputs of :func:`stabilizer_group_expectations`.

    Inputs are the packed ``(B, n, W)`` generator blocks as handed to
    :func:`stabilizer_expectations`; the row weights and pairwise cross
    parities are exactly the ones the ungrouped kernel computes (same helper
    functions), which is one half of the bit-identical-reduction invariant.
    """
    if stab_x.ndim != 3:
        raise SimulationError("group_reduction_context expects packed (B, n, W) rows")
    gen_x = np.concatenate(
        [unpack_bits(stab_x, num_qubits), unpack_bits(destab_x, num_qubits)], axis=1
    )
    gen_z = np.concatenate(
        [unpack_bits(stab_z, num_qubits), unpack_bits(destab_z, num_qubits)], axis=1
    )
    return GroupReductionContext(
        gen_x=gen_x,
        gen_z=gen_z,
        row_weights=_row_weights(stab_x, stab_z, stab_signs),
        cross=_pairwise_cross(stab_z, stab_x),
        num_qubits=num_qubits,
    )


def stabilizer_group_expectations(
    context: GroupReductionContext,
    rep_x: np.ndarray,
    rep_z: np.ndarray,
    support_t: np.ndarray,
    y_term: np.ndarray,
) -> np.ndarray:
    """Expectations of one qubit-wise-commuting group's terms: ``(B, Tg)`` int8.

    ``rep_x``/``rep_z`` are the group representative's per-qubit bits
    (``(nq,)`` bool, the union of the members' factors), ``support_t`` the
    members' *transposed* support masks (``(nq, Tg)`` float32 with entries
    0.0/1.0, columns in label order within the group), and ``y_term`` the
    members' Y-counts as float32.

    Within a qubit-wise group every member equals the representative masked
    to its support, ``t = (rep_x & s_t, rep_z & s_t)``, and AND distributes
    over XOR, so the anticommutation parity of member ``t`` with generator
    row ``(gx, gz)`` factors as

        ``parity((tz & gx) ^ (tx & gz)) = parity(s_t & A)``,
        ``A = (rep_z & gx) ^ (rep_x & gz)``

    — one shared representative pass ``A`` over the stacked
    stabilizer+destabilizer rows (the tableau work), then one float32 BLAS
    matmul against the support masks yields the parity counts for *all*
    members against *all* rows at once: the stabilizer half gives the
    anticommutation test, the destabilizer half the participation matrix.
    The phase assembly then follows :func:`stabilizer_expectations` exactly
    (same row weights, same pairwise cross, same closed-form telescoped
    product).  Every intermediate is an exact small integer — counts stay
    below 2**24 so float32 matmuls are exact, parities drop to int8, and the
    phase fits float32 — so the grouped and ungrouped kernels return
    bit-identical values, not merely close ones.
    """
    batch = context.batch
    rows = context.num_rows
    num_members = support_t.shape[1]

    # Shared representative pass over stacked stab+destab rows, then one
    # fused parity matmul for every (row, member) pair.
    source = (context.gen_x & rep_z) ^ (context.gen_z & rep_x)  # (B, 2n, nq)
    counts = (
        source.reshape(batch * 2 * rows, context.num_qubits).astype(np.float32)
        @ support_t
    )
    parity = (counts.astype(np.int8) & 1).reshape(batch, 2 * rows, num_members)

    commutes = ~parity[:, :rows].any(axis=1)  # (B, Tg)
    participates = parity[:, rows:].astype(np.float32)  # (B, n, Tg)

    linear = (context.row_weights[:, None, :] @ participates)[:, 0]  # (B, Tg)
    pair = (participates * (context.cross @ participates)).sum(axis=1)
    # Exact in float32: linear <= n * (n + 2), pair <= n**2, both << 2**24.
    phase = (linear + 2.0 * pair - y_term[None]).astype(np.int32) & 3

    if np.any(commutes & (phase & 1).astype(bool)):
        raise SimulationError("internal error: stabilizer decomposition mismatch")
    sign = np.where(phase == 0, np.int8(1), np.int8(-1))
    return np.where(commutes, sign, np.int8(0))

"""Discrete Bayesian optimization loop (warm-up sampling + surrogate-guided search).

This mirrors the HyperMapper-style search the paper uses: a random warm-up
phase maps the space, then each round fits the random-forest surrogate on all
observations, scores a candidate pool with the acquisition function, and
evaluates the best-scoring unseen candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bayesopt.acquisition import AcquisitionFunction, GreedyAcquisition
from repro.bayesopt.forest import RandomForestRegressor
from repro.bayesopt.space import DiscreteSpace
from repro.exceptions import OptimizationError

Point = Tuple[int, ...]


def _point_key(point: Sequence[int]) -> bytes:
    """Canonical hashable key for a point (int64 little-endian bytes)."""
    return np.asarray(point, dtype=np.int64).tobytes()


def _row_keys(rows: np.ndarray) -> List[bytes]:
    """Per-row canonical keys of a ``(count, d)`` integer point array."""
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    return [row.tobytes() for row in rows]


@dataclass
class Observation:
    """A single evaluated point."""

    point: Point
    value: float
    iteration: int
    phase: str  # "warmup", "seed", or "search"


@dataclass
class BayesianOptimizationResult:
    """Everything the experiments need about one search run."""

    best_point: Point
    best_value: float
    observations: List[Observation]
    num_iterations: int
    converged_iteration: int

    @property
    def history(self) -> np.ndarray:
        """Objective value per evaluation, in order."""
        return np.fromiter(
            (obs.value for obs in self.observations),
            dtype=float,
            count=len(self.observations),
        )

    @property
    def best_so_far(self) -> np.ndarray:
        """Running minimum of the objective (the usual BO trace plot)."""
        history = self.history
        return np.minimum.accumulate(history) if history.size else history

    def iterations_to_reach(self, threshold: float) -> Optional[int]:
        """First evaluation index (1-based) whose running best is <= threshold."""
        reached = np.nonzero(self.best_so_far <= threshold)[0]
        return int(reached[0]) + 1 if reached.size else None


class BayesianOptimizer:
    """Sample-efficient minimizer over a :class:`DiscreteSpace`.

    Parameters
    ----------
    space:
        The discrete search space.
    warmup_evaluations:
        Number of uniformly random evaluations before the surrogate is used
        (the paper's "first 1,000 iterations are a warm-up period", scaled to
        the problem at hand).
    candidate_pool_size:
        Number of candidate points scored by the acquisition per round
        (mix of random points and mutations of the incumbent).
    surrogate_factory / acquisition:
        Overridable for ablation studies; defaults follow the paper (random
        forest + greedy acquisition).
    seed_points:
        Points evaluated up front regardless of the random warm-up (CAFQA
        seeds the Hartree–Fock Clifford point so it can never do worse).
    convergence_patience:
        Stop early when the best value has not improved for this many
        consecutive evaluations (None disables early stopping).
    seed / rng:
        ``rng`` injects the generator driving warm-up sampling, candidate
        pools, and surrogate fits; when omitted one is created from ``seed``.
        The optimizer owns no module-level random state, so two optimizers
        built with the same seed (or generators with the same state) produce
        bit-identical trajectories, and independent restarts can be driven
        from spawned child generators.
    proposal_batch:
        Number of surrogate-guided candidates proposed *and evaluated as one
        batch* per round.  The default of 1 reproduces the classic
        one-point-per-round loop exactly; larger values score the candidate
        pool once and submit the top-k unseen points together, which is much
        faster on batched objectives at the cost of a slightly less adaptive
        trajectory.  Each batch is additionally capped at the evaluations
        remaining until the next surrogate refit (so batching never stales
        the model beyond ``refit_interval``; raise both together), and
        model-guided batching is disabled when ``convergence_patience`` is
        set, since no evaluation may run past the stopping point (seed points
        still batch: every seed is evaluated unconditionally either way).
    """

    def __init__(
        self,
        space: DiscreteSpace,
        warmup_evaluations: int = 100,
        candidate_pool_size: int = 200,
        surrogate_factory: Optional[Callable[[], RandomForestRegressor]] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        seed_points: Optional[Sequence[Sequence[int]]] = None,
        convergence_patience: Optional[int] = None,
        refit_interval: int = 1,
        proposal_batch: int = 1,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if warmup_evaluations < 1:
            raise OptimizationError("need at least one warm-up evaluation")
        if candidate_pool_size < 1:
            raise OptimizationError("candidate pool must contain at least one point")
        if proposal_batch < 1:
            raise OptimizationError("proposal_batch must be at least one")
        self._space = space
        self._warmup = int(warmup_evaluations)
        self._pool_size = int(candidate_pool_size)
        self._surrogate_factory = surrogate_factory
        self._acquisition = acquisition or GreedyAcquisition()
        self._seed_points = [tuple(int(v) for v in p) for p in (seed_points or [])]
        self._patience = convergence_patience
        self._refit_interval = max(1, int(refit_interval))
        self._proposal_batch = int(proposal_batch)
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def minimize(
        self,
        objective: Callable[[Point], float],
        max_evaluations: int,
        callback: Optional[Callable[[Observation], None]] = None,
    ) -> BayesianOptimizationResult:
        """Minimize ``objective`` with at most ``max_evaluations`` evaluations."""
        if max_evaluations < 1:
            raise OptimizationError("max_evaluations must be positive")
        observations: List[Observation] = []
        # Points are tracked three ways, each serving a hot path: the
        # Observation list is the API, the byte-string set is O(1) dedup for
        # array-native candidate pools, and the growing feature/value buffers
        # feed surrogate refits without re-packing tuples every round.
        seen_keys: set[bytes] = set()
        dimensions = self._space.num_dimensions
        feature_buffer = np.empty((max(64, min(max_evaluations, 4096)), dimensions))
        value_buffer = np.empty(len(feature_buffer))
        best_point: Optional[Point] = None
        best_value = np.inf
        stale = 0
        converged_iteration = 0
        # Objectives exposing ``evaluate_batch`` (e.g. CliffordObjective) get
        # whole batches of points instead of one call per point; the recorded
        # trajectory is identical because batch values match pointwise ones.
        batch_evaluate = getattr(objective, "evaluate_batch", None)

        def record(point: Point, phase: str, value: Optional[float] = None) -> None:
            nonlocal best_point, best_value, stale, converged_iteration
            nonlocal feature_buffer, value_buffer
            value = float(objective(point)) if value is None else float(value)
            observation = Observation(
                point=point, value=value, iteration=len(observations) + 1, phase=phase
            )
            count = len(observations)
            if count >= len(feature_buffer):
                feature_buffer = np.concatenate([feature_buffer, np.empty_like(feature_buffer)])
                value_buffer = np.concatenate([value_buffer, np.empty_like(value_buffer)])
            feature_buffer[count] = point
            value_buffer[count] = value
            observations.append(observation)
            seen_keys.add(_point_key(point))
            if value < best_value - 1e-12:
                best_value = value
                best_point = point
                stale = 0
                converged_iteration = observation.iteration
            else:
                stale += 1
            if callback is not None:
                callback(observation)

        # Seed points (e.g. the Hartree-Fock Clifford point) come first.
        pending_seeds: List[Point] = []
        for point in self._seed_points:
            if len(pending_seeds) >= max_evaluations:
                break
            point = self._space.validate(point)
            if point not in pending_seeds:
                pending_seeds.append(point)
        seed_values = (
            batch_evaluate(pending_seeds)
            if batch_evaluate is not None and len(pending_seeds) > 1
            else None
        )
        for position, point in enumerate(pending_seeds):
            record(point, "seed", None if seed_values is None else seed_values[position])

        # Warm-up phase: uniform random exploration.  The single acceptance
        # rule (budget, attempts cap, dedup against everything already
        # tracked, duplicates allowed once the space is exhausted) serves
        # both execution modes.  When the objective is batched and no early
        # stopping can trigger, the warm-up is drawn in whole-block vector
        # samples and submitted as one batch; with patience set, sampling
        # stays one draw per evaluation so no point is sampled or simulated
        # past the stopping iteration.
        warmup_budget = min(self._warmup, max_evaluations - len(observations))
        attempts_cap = 50 * self._warmup
        attempts = 0
        if batch_evaluate is not None and self._patience is None:
            planned: List[Point] = []
            planned_keys = set(seen_keys)
            while len(planned) < warmup_budget and attempts < attempts_cap:
                block = self._space.sample_array(
                    min(warmup_budget - len(planned), attempts_cap - attempts), self._rng
                )
                attempts += len(block)
                for row, key in zip(block.tolist(), _row_keys(block)):
                    if key in planned_keys and self._space.size > len(planned_keys):
                        continue
                    planned.append(tuple(row))
                    planned_keys.add(key)
                    if len(planned) >= warmup_budget:
                        break
            values = batch_evaluate(planned) if len(planned) > 1 else None
            for position, candidate in enumerate(planned):
                record(
                    candidate, "warmup", None if values is None else values[position]
                )
        else:
            while warmup_budget > 0 and attempts < attempts_cap:
                attempts += 1
                block = self._space.sample_array(1, self._rng)
                key = _row_keys(block)[0]
                if key in seen_keys and self._space.size > len(seen_keys):
                    continue
                record(tuple(block[0].tolist()), "warmup")
                warmup_budget -= 1
                if self._stopped(stale):
                    break

        # Model-guided phase: score the candidate pool once per round and
        # submit the top proposals as one batch.
        surrogate = None
        rounds_since_fit = self._refit_interval
        while len(observations) < max_evaluations and not self._stopped(stale):
            if rounds_since_fit >= self._refit_interval or surrogate is None:
                surrogate = self._fit_surrogate(
                    feature_buffer[: len(observations)],
                    value_buffer[: len(observations)],
                )
                rounds_since_fit = 0
            # With early stopping active, propose one point at a time so no
            # batch is simulated past the stopping point (mirrors warm-up).
            count = min(
                self._proposal_batch if self._patience is None else 1,
                max_evaluations - len(observations),
                self._refit_interval - rounds_since_fit,
            )
            candidates = self._propose_batch(
                surrogate, best_value, seen_keys, best_point, count
            )
            if not candidates:
                break
            values = (
                batch_evaluate(candidates)
                if batch_evaluate is not None and len(candidates) > 1
                else None
            )
            for position, candidate in enumerate(candidates):
                record(
                    candidate, "search", None if values is None else values[position]
                )
                rounds_since_fit += 1
                if len(observations) >= max_evaluations or self._stopped(stale):
                    break

        if best_point is None:
            raise OptimizationError("no evaluations were performed")
        return BayesianOptimizationResult(
            best_point=best_point,
            best_value=best_value,
            observations=observations,
            num_iterations=len(observations),
            converged_iteration=converged_iteration,
        )

    # ------------------------------------------------------------------ #
    def _stopped(self, stale: int) -> bool:
        return self._patience is not None and stale >= self._patience

    def _fit_surrogate(
        self, features: np.ndarray, values: np.ndarray
    ) -> RandomForestRegressor:
        # Cap the surrogate's training set so model fitting stays cheap on long
        # runs: keep the best observations plus a random subsample of the rest.
        max_training = 400
        if len(values) > max_training:
            ranked = np.argsort(values, kind="stable")
            keep = ranked[: max_training // 2]
            rest = ranked[max_training // 2 :]
            extra_indices = self._rng.choice(
                len(rest), size=max_training - len(keep), replace=False
            )
            training_rows = np.concatenate([keep, rest[extra_indices]])
            features = features[training_rows]
            values = values[training_rows]
        if self._surrogate_factory is not None:
            surrogate = self._surrogate_factory()
        else:
            # Each refit draws a fresh child generator from the optimizer's
            # stream: fits stay decorrelated across rounds (reseeding every
            # forest identically would make refits reuse one bootstrap
            # stream) while remaining a pure function of the injected RNG.
            surrogate = RandomForestRegressor(
                num_trees=12,
                max_depth=10,
                rng=np.random.default_rng(int(self._rng.integers(0, 2**63))),
            )
        surrogate.fit(features, values)
        return surrogate

    def _propose_batch(
        self,
        surrogate: RandomForestRegressor,
        best_value: float,
        seen_keys: set[bytes],
        best_point: Optional[Point],
        count: int,
    ) -> List[Point]:
        """The ``count`` best-scoring unseen candidates from one scored pool.

        The pool lives as one ``(pool_size, d)`` integer array from sampling
        through scoring; points become tuples only for the returned winners.
        """
        half = self._pool_size // 2
        pool = self._space.sample_array(half, self._rng)
        if best_point is not None:
            pool = np.concatenate(
                [
                    pool,
                    self._space.neighbors_array(
                        best_point, self._rng, count=self._pool_size - half
                    ),
                ]
            )
        # Order-preserving dedup (first occurrence wins, like dict.fromkeys).
        _, first_occurrence = np.unique(pool, axis=0, return_index=True)
        pool = pool[np.sort(first_occurrence)]
        unseen_rows = [
            index
            for index, key in enumerate(_row_keys(pool))
            if key not in seen_keys
        ]
        if not unseen_rows:
            # Space may be nearly exhausted; fall back to any unseen random point.
            for _ in range(10):
                block = self._space.sample_array(100, self._rng)
                for row, key in zip(block.tolist(), _row_keys(block)):
                    if key not in seen_keys:
                        return [tuple(row)]
            return []
        unseen = pool[unseen_rows]
        mean, std = surrogate.predict_with_uncertainty(unseen.astype(float))
        scores = self._acquisition.score(mean, std, best_value, self._rng)
        order = np.argsort(scores, kind="stable")[:count]
        return [tuple(row) for row in unseen[order].tolist()]

"""Discrete search spaces for Bayesian optimization.

CAFQA's search space is one categorical variable per ansatz parameter, each
taking one of the four Clifford rotation indices {0, 1, 2, 3}.  The space
abstraction is kept generic (per-dimension cardinality) so the optimizer can
also be unit-tested on synthetic combinatorial problems.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import OptimizationError


class DiscreteSpace:
    """A product of finite categorical dimensions."""

    def __init__(self, cardinalities: Sequence[int]):
        cards = [int(c) for c in cardinalities]
        if not cards:
            raise OptimizationError("the search space needs at least one dimension")
        if any(c < 1 for c in cards):
            raise OptimizationError("every dimension needs at least one value")
        self._cardinalities = tuple(cards)

    @classmethod
    def clifford(cls, num_parameters: int) -> "DiscreteSpace":
        """The CAFQA space: ``num_parameters`` dimensions of cardinality 4."""
        if num_parameters < 1:
            raise OptimizationError("need at least one tunable parameter")
        return cls([4] * num_parameters)

    # ------------------------------------------------------------------ #
    @property
    def num_dimensions(self) -> int:
        return len(self._cardinalities)

    @property
    def cardinalities(self) -> Tuple[int, ...]:
        return self._cardinalities

    @property
    def size(self) -> int:
        """Total number of points in the space."""
        total = 1
        for cardinality in self._cardinalities:
            total *= cardinality
        return total

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != self.num_dimensions:
            return False
        return all(0 <= int(v) < c for v, c in zip(point, self._cardinalities))

    def validate(self, point: Sequence[int]) -> Tuple[int, ...]:
        if not self.contains(point):
            raise OptimizationError(f"point {tuple(point)} is outside the search space")
        return tuple(int(v) for v in point)

    # ------------------------------------------------------------------ #
    def sample(self, count: int, rng: np.random.Generator) -> List[Tuple[int, ...]]:
        """Uniform random samples (with replacement)."""
        columns = [rng.integers(0, c, size=count) for c in self._cardinalities]
        return [tuple(int(column[i]) for column in columns) for i in range(count)]

    def neighbors(
        self,
        point: Sequence[int],
        rng: np.random.Generator,
        count: int,
        mutation_rate: float = 0.15,
    ) -> List[Tuple[int, ...]]:
        """Random mutations of ``point`` (at least one coordinate changes)."""
        point = self.validate(point)
        results: List[Tuple[int, ...]] = []
        for _ in range(count):
            mutated = list(point)
            changed = False
            for dimension, cardinality in enumerate(self._cardinalities):
                if cardinality > 1 and rng.random() < mutation_rate:
                    choices = [v for v in range(cardinality) if v != mutated[dimension]]
                    mutated[dimension] = int(rng.choice(choices))
                    changed = True
            if not changed:
                dimension = int(rng.integers(0, self.num_dimensions))
                cardinality = self._cardinalities[dimension]
                if cardinality > 1:
                    choices = [v for v in range(cardinality) if v != mutated[dimension]]
                    mutated[dimension] = int(rng.choice(choices))
            results.append(tuple(mutated))
        return results

    def to_array(self, points: Iterable[Sequence[int]]) -> np.ndarray:
        """Stack points into a float feature matrix for the surrogate model."""
        return np.asarray([list(point) for point in points], dtype=float)

    def __repr__(self) -> str:
        if len(set(self._cardinalities)) == 1:
            return f"DiscreteSpace({self.num_dimensions} dims x {self._cardinalities[0]})"
        return f"DiscreteSpace({self._cardinalities})"

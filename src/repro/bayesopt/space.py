"""Discrete search spaces for Bayesian optimization.

CAFQA's search space is one categorical variable per ansatz parameter, each
taking one of the four Clifford rotation indices {0, 1, 2, 3}.  The space
abstraction is kept generic (per-dimension cardinality) so the optimizer can
also be unit-tested on synthetic combinatorial problems.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import OptimizationError


class DiscreteSpace:
    """A product of finite categorical dimensions."""

    def __init__(self, cardinalities: Sequence[int]):
        cards = [int(c) for c in cardinalities]
        if not cards:
            raise OptimizationError("the search space needs at least one dimension")
        if any(c < 1 for c in cards):
            raise OptimizationError("every dimension needs at least one value")
        self._cardinalities = tuple(cards)
        self._cards = np.array(cards, dtype=np.int64)
        self._mutable = self._cards > 1

    @classmethod
    def clifford(cls, num_parameters: int) -> "DiscreteSpace":
        """The CAFQA space: ``num_parameters`` dimensions of cardinality 4."""
        if num_parameters < 1:
            raise OptimizationError("need at least one tunable parameter")
        return cls([4] * num_parameters)

    # ------------------------------------------------------------------ #
    @property
    def num_dimensions(self) -> int:
        return len(self._cardinalities)

    @property
    def cardinalities(self) -> Tuple[int, ...]:
        return self._cardinalities

    @property
    def size(self) -> int:
        """Total number of points in the space."""
        total = 1
        for cardinality in self._cardinalities:
            total *= cardinality
        return total

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != self.num_dimensions:
            return False
        return all(0 <= int(v) < c for v, c in zip(point, self._cardinalities))

    def validate(self, point: Sequence[int]) -> Tuple[int, ...]:
        if not self.contains(point):
            raise OptimizationError(f"point {tuple(point)} is outside the search space")
        return tuple(int(v) for v in point)

    # ------------------------------------------------------------------ #
    def sample_array(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random samples (with replacement) as a ``(count, d)`` array.

        One vectorized draw for the whole block — the array-native hot path
        used by the optimizer's warm-up and candidate pools.
        """
        return rng.integers(0, self._cards, size=(int(count), len(self._cards)))

    def sample(self, count: int, rng: np.random.Generator) -> List[Tuple[int, ...]]:
        """Uniform random samples (with replacement) as tuples."""
        return [tuple(row) for row in self.sample_array(count, rng).tolist()]

    def neighbors_array(
        self,
        point: Sequence[int],
        rng: np.random.Generator,
        count: int,
        mutation_rate: float = 0.15,
    ) -> np.ndarray:
        """Random mutations of ``point`` as a ``(count, d)`` array.

        Each coordinate of each mutant flips with probability
        ``mutation_rate`` to a uniformly random *different* value (via a
        uniform non-zero offset modulo the cardinality).  A mutant with no
        flips gets one uniformly chosen coordinate flipped instead — like
        the per-point loop this replaces, that fallback draws over *all*
        dimensions, so in a mixed space it can land on a cardinality-1
        dimension and leave the mutant equal to ``point``.  In spaces whose
        dimensions all have at least two values (e.g. the Clifford space)
        every mutant differs from ``point``.
        """
        point = np.asarray(self.validate(point), dtype=np.int64)
        count = int(count)
        dims = len(self._cards)
        flip = rng.random((count, dims)) < mutation_rate
        flip &= self._mutable
        # A uniform offset in [1, cardinality) modulo the cardinality is a
        # uniform draw over the values different from the current one.
        # Cardinality-1 dimensions never flip; clip keeps integers() happy.
        offsets = rng.integers(1, np.maximum(self._cards, 2), size=(count, dims))
        mutated = np.where(flip, (point + offsets) % self._cards, point)
        unchanged = ~flip.any(axis=1)
        if unchanged.any():
            stuck = np.nonzero(unchanged)[0]
            dimensions = rng.integers(0, dims, size=len(stuck))
            forced = (
                point[dimensions]
                + rng.integers(1, np.maximum(self._cards[dimensions], 2))
            ) % self._cards[dimensions]
            mutated[stuck, dimensions] = np.where(
                self._mutable[dimensions], forced, mutated[stuck, dimensions]
            )
        return mutated

    def neighbors(
        self,
        point: Sequence[int],
        rng: np.random.Generator,
        count: int,
        mutation_rate: float = 0.15,
    ) -> List[Tuple[int, ...]]:
        """Random mutations of ``point`` (at least one coordinate changes)."""
        return [
            tuple(row)
            for row in self.neighbors_array(point, rng, count, mutation_rate).tolist()
        ]

    def to_array(self, points) -> np.ndarray:
        """Stack points into a float feature matrix for the surrogate model."""
        if isinstance(points, np.ndarray):
            return points.astype(float, copy=False)
        return np.asarray([list(point) for point in points], dtype=float)

    def __repr__(self) -> str:
        if len(set(self._cardinalities)) == 1:
            return f"DiscreteSpace({self.num_dimensions} dims x {self._cardinalities[0]})"
        return f"DiscreteSpace({self._cardinalities})"

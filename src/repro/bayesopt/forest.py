"""Vectorized random-forest regression surrogate.

The paper (via HyperMapper) uses a random-forest surrogate because the CAFQA
search space is discrete.  The original from-scratch implementation (kept as
the test oracle in :mod:`repro.bayesopt._reference`) stored trees as linked
``_Node`` objects, re-computed ``np.var`` for every candidate threshold, and
predicted one Python row at a time — at 400 observations x 72 parameters the
surrogate refit dominated end-to-end search wall-clock by ~100x over the
stabilizer simulator.

This engine keeps the exact same statistical model (variance-reduction CART
splits, bootstrap bagging, per-node feature subsampling, across-tree
uncertainty) but stores and computes everything on flat arrays:

* **Split scan**: each node sorts its candidate-feature submatrix once and
  scans every threshold of every candidate feature with cumulative-sum
  sum-of-squared-error formulas — O(n log n) per feature instead of an
  O(n * thresholds) re-masked ``np.var`` per threshold.  Tie-breaking is
  deterministic and mirrors the reference scan: the lowest threshold wins
  within a feature (first arg-max) and the earliest candidate feature wins
  across features (strict improvement).
* **Flat storage**: nodes live in parallel ``feature`` / ``threshold`` /
  ``left`` / ``right`` / ``value`` arrays (``feature == -1`` marks a leaf);
  there is no per-node Python object.
* **Batch predict**: whole query matrices descend the tree level-wise via
  index-array gathers — zero Python recursion.  The forest additionally
  concatenates all of its trees into one node table so an ensemble
  prediction is a single traversal of ``num_trees x num_rows`` cursors.

The engine has two modes:

* **fast mode** (default, used by the search): candidate feature subsets
  come from an argsort-of-uniforms draw, split ties break to the first
  arg-max in scan order, and children partition straight from the sorted
  order.  Fully deterministic for a given generator state, but the RNG
  stream and exact tie arbitration differ from the reference engine, so
  seeded search trajectories are pinned by golden-trace tests rather than
  by reference equality.
* **``reference_parity`` mode** (the property-test oracle): RNG discipline
  matches the reference engine call-for-call (one bootstrap ``integers``
  per tree, one feature-subset ``choice`` per internal node attempt,
  consumed in left-first depth-first order) and near-maximal split ties are
  re-scored with the reference's exact float sequence, so the same
  generator state produces bit-identical trees to
  :class:`repro.bayesopt._reference.ReferenceRandomForest`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import OptimizationError

_MIN_GAIN = 1e-12


class DecisionTreeRegressor:
    """CART-style regression tree with variance-reduction splits.

    After :meth:`fit` the tree is five parallel arrays; ``feature[i] == -1``
    marks node ``i`` as a leaf whose prediction is ``value[i]``.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        reference_parity: bool = False,
    ):
        self._max_depth = int(max_depth)
        self._min_samples_split = int(min_samples_split)
        self._min_samples_leaf = int(min_samples_leaf)
        self._max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self._reference_parity = bool(reference_parity)
        self._feature: Optional[np.ndarray] = None
        self._threshold: Optional[np.ndarray] = None
        self._left: Optional[np.ndarray] = None
        self._right: Optional[np.ndarray] = None
        self._value: Optional[np.ndarray] = None
        self._feature_rows: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return 0 if self._value is None else len(self._value)

    def node_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(feature, threshold, left, right, value)`` in left-first pre-order."""
        if self._value is None:
            raise OptimizationError("the tree has not been fitted")
        return self._feature, self._threshold, self._left, self._right, self._value

    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or len(features) != len(targets):
            raise OptimizationError("features must be 2-D and aligned with targets")
        if len(targets) == 0:
            raise OptimizationError("cannot fit a tree on zero samples")
        num_features = features.shape[1]
        max_features = self._max_features or num_features
        max_features = min(max_features, num_features)
        # Transposed copy: every per-feature kernel in the split scan (sort,
        # cumulative sums, threshold comparisons) then runs along a
        # contiguous row instead of a strided column.  The two scratch
        # arrays are shared by every node of this fit.
        features_t = np.ascontiguousarray(features.T)
        self._feature_rows = np.arange(max_features)[:, None]
        self._counts = np.arange(1, len(targets) + 1, dtype=float)

        feature_ids: List[int] = []
        thresholds: List[float] = []
        lefts: List[int] = []
        rights: List[int] = []
        values: List[float] = []

        # Left-first pre-order DFS via an explicit stack: pop a node, draw its
        # candidate features, split, push right then left so the left child is
        # processed (and consumes RNG) before the whole right subtree — the
        # same order as the reference engine's recursion.
        stack: List[Tuple[np.ndarray, int, int, bool]] = [
            (np.arange(len(targets)), 0, -1, False)
        ]
        while stack:
            rows, depth, parent, is_left = stack.pop()
            node_id = len(values)
            if parent >= 0:
                if is_left:
                    lefts[parent] = node_id
                else:
                    rights[parent] = node_id
            node_targets = targets[rows]
            # ``arr.sum() / n`` is bit-identical to ``np.mean`` (same pairwise
            # add.reduce, same scalar division) without the wrapper overhead;
            # the explicit comparison below is ``np.allclose(t, t[0])`` for
            # finite targets, again minus the wrapper stack.
            values.append(float(node_targets.sum() / len(rows)))
            feature_ids.append(-1)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            first = float(node_targets[0])
            if (
                depth >= self._max_depth
                or len(rows) < self._min_samples_split
                or bool(
                    (np.abs(node_targets - first) <= 1e-8 + 1e-5 * abs(first)).all()
                )
            ):
                continue
            if self._reference_parity:
                candidates = self._rng.choice(
                    num_features, size=max_features, replace=False
                )
            else:
                # Uniform feature subset via argsort-of-uniforms: the same
                # distribution as ``rng.choice(..., replace=False)`` at a
                # fraction of the per-node cost.
                candidates = self._rng.random(num_features).argsort()[:max_features]
            split = self._best_split(features_t, rows, node_targets, candidates)
            if split is None:
                continue
            split_feature, split_threshold, left_rows, right_rows = split
            feature_ids[node_id] = split_feature
            thresholds[node_id] = split_threshold
            stack.append((right_rows, depth + 1, node_id, False))
            stack.append((left_rows, depth + 1, node_id, True))

        self._feature = np.array(feature_ids, dtype=np.int32)
        self._threshold = np.array(thresholds, dtype=float)
        self._left = np.array(lefts, dtype=np.int32)
        self._right = np.array(rights, dtype=np.int32)
        self._value = np.array(values, dtype=float)
        return self

    def _best_split(
        self,
        features_t: np.ndarray,
        rows: np.ndarray,
        node_targets: np.ndarray,
        candidates: np.ndarray,
    ) -> Optional[Tuple[int, float, np.ndarray, np.ndarray]]:
        """Best split as ``(feature, threshold, left_rows, right_rows)``.

        One sort per candidate feature; every threshold of every candidate is
        scored in a single cumulative-sum pass, using the identity

            gain = parent_sse - left_sse - right_sse
                 = const(node) + left_sum^2/left_n + right_sum^2/right_n

        so only the cumulative *sums* are needed for ranking (the squared
        terms cancel).  In the default fast mode the first arg-max cell in
        scan order wins outright; in ``reference_parity`` mode near-maximal
        ties are re-scored with the reference engine's exact float sequence
        (see below), so the ranking pass only has to be correct to rounding
        noise.
        """
        num_samples = len(rows)
        min_leaf = max(1, self._min_samples_leaf)
        # Split position i (0-based into the sorted order) puts sorted rows
        # [0, i] left; only i in [min_leaf-1, n-min_leaf-1] can satisfy both
        # leaf minima, so all per-threshold arrays live on that window.
        window_lo = min_leaf - 1
        window_hi = num_samples - min_leaf
        if window_hi <= window_lo:
            return None

        submatrix = features_t[candidates[:, None], rows[None, :]]  # (f, n)
        order = submatrix.argsort(axis=1)
        sorted_values = submatrix[self._feature_rows, order]
        sorted_targets = node_targets[order[:, :window_hi]]

        left_sums = sorted_targets.cumsum(axis=1)[:, window_lo:]
        total = float(node_targets.sum())
        left_counts = self._counts[window_lo:window_hi]
        scores = left_sums * left_sums / left_counts + (total - left_sums) ** 2 / (
            num_samples - left_counts
        )
        # Only boundaries between distinct sorted values are real thresholds.
        scores[
            sorted_values[:, window_lo + 1 : window_hi + 1]
            <= sorted_values[:, window_lo:window_hi]
        ] = -np.inf

        if not self._reference_parity:
            # First arg-max in C order = thresholds ascending within each
            # candidate feature, features in draw order — deterministic, and
            # the same scan order the parity mode's exact arbitration uses.
            best_flat = int(scores.argmax())
            best_feature, best_window = divmod(best_flat, scores.shape[1])
            max_score = float(scores[best_feature, best_window])
            if max_score == -np.inf:
                return None
            # One-pass acceptance: gain = max_score - total^2/n up to
            # rounding, which is all the 1e-12 positivity check needs.
            if not max_score - total * total / num_samples > _MIN_GAIN:
                return None
            best_position = best_window + window_lo
            threshold = float(
                (
                    sorted_values[best_feature, best_position]
                    + sorted_values[best_feature, best_position + 1]
                )
                / 2.0
            )
            # The sorted order already encodes the partition: rows [0, i]
            # of the winning feature's sort go left.
            sorted_rows = rows[order[best_feature]]
            return (
                int(candidates[best_feature]),
                threshold,
                sorted_rows[: best_position + 1],
                sorted_rows[best_position + 1 :],
            )

        max_score = scores.max()
        if max_score == -np.inf:
            return None
        squared = node_targets * node_targets
        total_sq = float(squared.sum())
        # ``float(np.var(t)) * n`` spelled out with the identical reduction
        # order (pairwise sum, divide, multiply, divide, multiply) so the
        # acceptance threshold matches the reference engine bit-for-bit.
        deviations = node_targets - node_targets.sum() / num_samples
        parent_sse = float((deviations * deviations).sum() / num_samples) * num_samples
        if not parent_sse - total_sq + max_score > _MIN_GAIN:
            return None

        # Different candidate features frequently induce the same partition,
        # possibly mirrored (ubiquitous with 4-valued Clifford features).
        # Such cells tie in exact arithmetic but land on different last-ulp
        # roundings above, because each column accumulates the targets in its
        # own sort order.  Every cell within a rounding-scale band of the
        # maximum is therefore re-scored with the reference engine's exact
        # float sequence — two-pass variance over the masked samples in
        # original row order, then ``(parent - left) - right`` — and the
        # band is scanned in the reference's order (thresholds ascending
        # within each candidate feature, features in draw order, strict
        # improvement), so the chosen split matches the reference bit for
        # bit instead of depending on ulp noise.  Mirrored and duplicated
        # partitions share their subset variances through the mask memo, and
        # outside of ties the band holds a single cell.
        # ~1000x the worst-case cumulative-sum rounding error (n * eps *
        # total_sq with n <= a few hundred), yet far below genuine gain
        # differences between distinct partitions.
        tolerance = 1e-10 * max(1.0, total_sq)
        tied_features, tied_positions = np.nonzero(scores >= max_score - tolerance)
        if len(tied_features) == 1:
            best_feature = int(tied_features[0])
            best_position = int(tied_positions[0]) + window_lo
        else:
            positions = tied_positions + window_lo
            midpoints = (
                sorted_values[tied_features, positions]
                + sorted_values[tied_features, positions + 1]
            ) / 2.0
            left_masks = submatrix[tied_features] <= midpoints[:, None]
            best_feature = best_position = -1
            best_gain = _MIN_GAIN
            subset_sse: dict = {}

            def masked_sse(mask: np.ndarray) -> float:
                key = mask.tobytes()
                cached = subset_sse.get(key)
                if cached is None:
                    subset = node_targets[mask]
                    count = subset.size
                    offsets = subset - subset.sum() / count
                    cached = float((offsets * offsets).sum() / count) * count
                    subset_sse[key] = cached
                return cached

            for cell, feature_index in enumerate(tied_features):
                left_mask = left_masks[cell]
                gain = (parent_sse - masked_sse(left_mask)) - masked_sse(~left_mask)
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feature_index)
                    best_position = int(positions[cell])
            if best_feature < 0:
                return None
        threshold = float(
            (
                sorted_values[best_feature, best_position]
                + sorted_values[best_feature, best_position + 1]
            )
            / 2.0
        )
        # Partition with the original row order preserved (like the
        # reference's boolean-mask recursion) so child statistics see the
        # samples in the same order.
        left_mask = submatrix[best_feature] <= threshold
        return (
            int(candidates[best_feature]),
            threshold,
            rows[left_mask],
            rows[~left_mask],
        )

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._value is None:
            raise OptimizationError("the tree has not been fitted")
        features = np.asarray(features, dtype=float)
        cursors = np.zeros(len(features), dtype=np.int32)
        return _descend(
            features, cursors, self._feature, self._threshold, self._left, self._right, self._value
        )


def _descend(
    features: np.ndarray,
    cursors: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    value: np.ndarray,
    row_index: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Advance every cursor to its leaf and return the leaf values.

    Level-wise iterative traversal: each pass moves every still-internal
    cursor one level down with pure array gathers, so the loop runs at most
    ``max_depth`` times regardless of how many rows are being predicted.
    ``row_index`` maps cursor slots to ``features`` rows when the two are
    not 1:1 (the forest points several per-tree cursors at each query row);
    by default cursor ``i`` reads ``features[i]``.
    """
    active = np.nonzero(feature[cursors] >= 0)[0]
    while active.size:
        nodes = cursors[active]
        rows = active if row_index is None else row_index[active]
        go_left = features[rows, feature[nodes]] <= threshold[nodes]
        cursors[active] = np.where(go_left, left[nodes], right[nodes])
        active = active[feature[cursors[active]] >= 0]
    return value[cursors]


class RandomForestRegressor:
    """Bagged ensemble of vectorized regression trees with uncertainty.

    At the end of :meth:`fit` the per-tree node arrays are concatenated into
    one table (child indices offset per tree), so
    :meth:`predict_with_uncertainty` runs a single batched traversal over
    ``num_trees x num_rows`` cursors instead of one Python pass per tree.
    """

    def __init__(
        self,
        num_trees: int = 20,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        feature_fraction: float = 0.7,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        reference_parity: bool = False,
    ):
        if num_trees < 1:
            raise OptimizationError("the forest needs at least one tree")
        if not 0.0 < feature_fraction <= 1.0:
            raise OptimizationError("feature_fraction must be in (0, 1]")
        self._num_trees = int(num_trees)
        self._max_depth = int(max_depth)
        self._min_samples_split = int(min_samples_split)
        self._min_samples_leaf = int(min_samples_leaf)
        self._feature_fraction = float(feature_fraction)
        self._reference_parity = bool(reference_parity)
        # An injected generator takes precedence over ``seed`` so callers can
        # derive forests from a single owned RNG stream (the Bayesian
        # optimizer does this per refit for decorrelated, reproducible fits).
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._trees: List[DecisionTreeRegressor] = []
        self._roots: Optional[np.ndarray] = None
        self._feature: Optional[np.ndarray] = None
        self._threshold: Optional[np.ndarray] = None
        self._left: Optional[np.ndarray] = None
        self._right: Optional[np.ndarray] = None
        self._value: Optional[np.ndarray] = None

    @property
    def num_trees(self) -> int:
        return self._num_trees

    @property
    def trees(self) -> List[DecisionTreeRegressor]:
        return list(self._trees)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if len(features) == 0:
            raise OptimizationError("cannot fit a forest on zero samples")
        num_samples, num_features = features.shape
        max_features = max(1, int(round(self._feature_fraction * num_features)))
        self._trees = []
        for _ in range(self._num_trees):
            indices = self._rng.integers(0, num_samples, size=num_samples)
            tree = DecisionTreeRegressor(
                max_depth=self._max_depth,
                min_samples_split=self._min_samples_split,
                min_samples_leaf=self._min_samples_leaf,
                max_features=max_features,
                rng=self._rng,
                reference_parity=self._reference_parity,
            )
            tree.fit(features[indices], targets[indices])
            self._trees.append(tree)
        self._concatenate()
        return self

    def _concatenate(self) -> None:
        """Fuse the per-tree node arrays into one offset-adjusted table."""
        counts = np.array([tree.node_count for tree in self._trees])
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        self._roots = offsets.astype(np.int64)
        features, thresholds, lefts, rights, values = [], [], [], [], []
        for tree, offset in zip(self._trees, offsets):
            feature, threshold, left, right, value = tree.node_arrays()
            features.append(feature)
            thresholds.append(threshold)
            # Leaves keep child == -1; internal children shift by the offset.
            lefts.append(np.where(left >= 0, left + offset, -1))
            rights.append(np.where(right >= 0, right + offset, -1))
            values.append(value)
        self._feature = np.concatenate(features)
        self._threshold = np.concatenate(thresholds)
        self._left = np.concatenate(lefts).astype(np.int64)
        self._right = np.concatenate(rights).astype(np.int64)
        self._value = np.concatenate(values)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Mean prediction across trees."""
        mean, _ = self.predict_with_uncertainty(features)
        return mean

    def predict_with_uncertainty(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, standard deviation) across the ensemble."""
        if self._value is None:
            raise OptimizationError("the forest has not been fitted")
        features = np.asarray(features, dtype=float)
        num_rows = len(features)
        # One cursor per (tree, row) pair; rows tile so row r of the query
        # matrix backs cursors r, r + num_rows, r + 2*num_rows, ...
        cursors = np.repeat(self._roots, num_rows).astype(np.int64)
        tiled_rows = np.tile(np.arange(num_rows), self._num_trees)
        leaves = _descend(
            features,
            cursors,
            self._feature,
            self._threshold,
            self._left,
            self._right,
            self._value,
            row_index=tiled_rows,
        )
        predictions = leaves.reshape(self._num_trees, num_rows)
        return predictions.mean(axis=0), predictions.std(axis=0)

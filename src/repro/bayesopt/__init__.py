"""Discrete Bayesian optimization: random-forest surrogate plus greedy acquisition."""

from repro.bayesopt.acquisition import (
    AcquisitionFunction,
    EpsilonGreedyAcquisition,
    ExpectedImprovement,
    GreedyAcquisition,
    LowerConfidenceBound,
    make_acquisition,
)
from repro.bayesopt.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.bayesopt.optimizer import (
    BayesianOptimizationResult,
    BayesianOptimizer,
    Observation,
)
from repro.bayesopt.space import DiscreteSpace

__all__ = [
    "DiscreteSpace",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "AcquisitionFunction",
    "GreedyAcquisition",
    "EpsilonGreedyAcquisition",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "make_acquisition",
    "BayesianOptimizer",
    "BayesianOptimizationResult",
    "Observation",
]

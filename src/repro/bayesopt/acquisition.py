"""Acquisition functions for the discrete Bayesian search.

CAFQA uses a greedy acquisition (pick the candidate with the lowest surrogate
prediction).  Epsilon-greedy and expected-improvement variants are provided
for the ablation benchmarks.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy.special import ndtr

from repro.exceptions import OptimizationError

_INV_SQRT_TWO_PI = 1.0 / math.sqrt(2.0 * math.pi)


class AcquisitionFunction(ABC):
    """Scores candidate points; *lower scores are better* (we minimize energy)."""

    @abstractmethod
    def score(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        best_observed: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a score per candidate; the optimizer picks the minimum."""

    @property
    def name(self) -> str:
        return type(self).__name__


class GreedyAcquisition(AcquisitionFunction):
    """Pick the candidate with the lowest predicted objective (the paper's choice)."""

    def score(self, mean, std, best_observed, rng):
        del std, best_observed, rng
        return np.asarray(mean, dtype=float)


class EpsilonGreedyAcquisition(AcquisitionFunction):
    """Greedy, but with probability ``epsilon`` rank candidates randomly."""

    def __init__(self, epsilon: float = 0.1):
        if not 0.0 <= epsilon <= 1.0:
            raise OptimizationError("epsilon must be in [0, 1]")
        self._epsilon = float(epsilon)

    def score(self, mean, std, best_observed, rng):
        del std, best_observed
        mean = np.asarray(mean, dtype=float)
        if rng.random() < self._epsilon:
            return rng.random(len(mean))
        return mean


class ExpectedImprovement(AcquisitionFunction):
    """Negative expected improvement below the best observed value."""

    def __init__(self, exploration: float = 0.0):
        self._exploration = float(exploration)

    def score(self, mean, std, best_observed, rng):
        del rng
        mean = np.asarray(mean, dtype=float)
        std = np.maximum(np.asarray(std, dtype=float), 1e-12)
        improvement = best_observed - self._exploration - mean
        standardized = improvement / std
        # ndtr / the explicit Gaussian density compute exactly what
        # ``scipy.stats.norm.cdf`` / ``.pdf`` would, minus the per-call
        # distribution-machinery overhead that dominates on 200-point pools.
        density = np.exp(-0.5 * standardized * standardized) * _INV_SQRT_TWO_PI
        expected = improvement * ndtr(standardized) + std * density
        return -expected


class LowerConfidenceBound(AcquisitionFunction):
    """mean - kappa * std (optimistic-under-uncertainty minimization)."""

    def __init__(self, kappa: float = 1.0):
        if kappa < 0:
            raise OptimizationError("kappa must be non-negative")
        self._kappa = float(kappa)

    def score(self, mean, std, best_observed, rng):
        del best_observed, rng
        return np.asarray(mean, dtype=float) - self._kappa * np.asarray(std, dtype=float)


def make_acquisition(name: str, **kwargs) -> AcquisitionFunction:
    """Factory used by configuration-driven experiments."""
    registry = {
        "greedy": GreedyAcquisition,
        "epsilon_greedy": EpsilonGreedyAcquisition,
        "expected_improvement": ExpectedImprovement,
        "lcb": LowerConfidenceBound,
    }
    try:
        return registry[name](**kwargs)
    except KeyError:
        raise OptimizationError(
            f"unknown acquisition {name!r}; available: {', '.join(sorted(registry))}"
        ) from None

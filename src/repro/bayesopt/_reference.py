"""Reference (pre-vectorization) random-forest surrogate.

This is the original pure-Python CART engine the search shipped with:
recursive ``_Node`` trees, an O(n * thresholds) variance scan per candidate
feature, and per-row Python ``predict``.  It is kept verbatim as the
ground-truth oracle for the vectorized engine in :mod:`repro.bayesopt.forest`:

* the property tests assert the vectorized trees choose the same splits and
  produce the same predictions given the same RNG stream, and
* ``benchmarks/test_perf_surrogate.py`` measures the vectorized engine's
  speedup against it (and an end-to-end search driven by it reproduces the
  PR-2 surrogate hot path for before/after throughput numbers).

Both engines consume their ``rng`` identically — one bootstrap
``integers`` draw per tree plus one ``choice`` draw per internal node
attempt, in left-first depth-first order — so a shared generator state
yields comparable forests.  Do not "improve" this module; it is a fixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import OptimizationError


@dataclass
class _Node:
    """A node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class ReferenceDecisionTree:
    """CART-style regression tree with variance-reduction splits."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self._max_depth = int(max_depth)
        self._min_samples_split = int(min_samples_split)
        self._min_samples_leaf = int(min_samples_leaf)
        self._max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self._root: Optional[_Node] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ReferenceDecisionTree":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or len(features) != len(targets):
            raise OptimizationError("features must be 2-D and aligned with targets")
        if len(targets) == 0:
            raise OptimizationError("cannot fit a tree on zero samples")
        self._root = self._build(features, targets, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise OptimizationError("the tree has not been fitted")
        features = np.asarray(features, dtype=float)
        return np.array([self._predict_row(row) for row in features])

    # ------------------------------------------------------------------ #
    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _build(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        value = float(np.mean(targets))
        if (
            depth >= self._max_depth
            or len(targets) < self._min_samples_split
            or np.allclose(targets, targets[0])
        ):
            return _Node(value=value)
        split = self._best_split(features, targets)
        if split is None:
            return _Node(value=value)
        feature, threshold, left_mask = split
        left = self._build(features[left_mask], targets[left_mask], depth + 1)
        right = self._build(features[~left_mask], targets[~left_mask], depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, features: np.ndarray, targets: np.ndarray):
        num_samples, num_features = features.shape
        max_features = self._max_features or num_features
        max_features = min(max_features, num_features)
        candidate_features = self._rng.choice(num_features, size=max_features, replace=False)
        parent_score = float(np.var(targets)) * num_samples
        best = None
        best_gain = 1e-12
        for feature in candidate_features:
            column = features[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                left_mask = column <= threshold
                left_count = int(np.sum(left_mask))
                right_count = num_samples - left_count
                if left_count < self._min_samples_leaf or right_count < self._min_samples_leaf:
                    continue
                left_score = float(np.var(targets[left_mask])) * left_count
                right_score = float(np.var(targets[~left_mask])) * right_count
                gain = parent_score - left_score - right_score
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask.copy())
        return best


class ReferenceRandomForest:
    """Bagged ensemble of reference trees with uncertainty estimates."""

    def __init__(
        self,
        num_trees: int = 20,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        feature_fraction: float = 0.7,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_trees < 1:
            raise OptimizationError("the forest needs at least one tree")
        if not 0.0 < feature_fraction <= 1.0:
            raise OptimizationError("feature_fraction must be in (0, 1]")
        self._num_trees = int(num_trees)
        self._max_depth = int(max_depth)
        self._min_samples_split = int(min_samples_split)
        self._min_samples_leaf = int(min_samples_leaf)
        self._feature_fraction = float(feature_fraction)
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._trees: List[ReferenceDecisionTree] = []

    @property
    def num_trees(self) -> int:
        return self._num_trees

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ReferenceRandomForest":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if len(features) == 0:
            raise OptimizationError("cannot fit a forest on zero samples")
        num_samples, num_features = features.shape
        max_features = max(1, int(round(self._feature_fraction * num_features)))
        self._trees = []
        for _ in range(self._num_trees):
            indices = self._rng.integers(0, num_samples, size=num_samples)
            tree = ReferenceDecisionTree(
                max_depth=self._max_depth,
                min_samples_split=self._min_samples_split,
                min_samples_leaf=self._min_samples_leaf,
                max_features=max_features,
                rng=self._rng,
            )
            tree.fit(features[indices], targets[indices])
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Mean prediction across trees."""
        mean, _ = self.predict_with_uncertainty(features)
        return mean

    def predict_with_uncertainty(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, standard deviation) across the ensemble."""
        if not self._trees:
            raise OptimizationError("the forest has not been fitted")
        predictions = np.stack([tree.predict(features) for tree in self._trees])
        return predictions.mean(axis=0), predictions.std(axis=0)

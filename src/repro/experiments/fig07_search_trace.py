"""Fig. 7 — Bayesian-optimization search trace with warm-up phase.

Reproduces the shape of the paper's H2O search trace: during the random
warm-up the best-so-far error improves slowly; once the surrogate-guided
phase starts, the error drops and (for favourable geometries) crosses the
chemical-accuracy threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.chemistry.molecules import make_problem
from repro.core.metrics import CHEMICAL_ACCURACY
from repro.core.search import CafqaSearch


@dataclass
class SearchTraceResult:
    molecule: str
    bond_length: float
    warmup_evaluations: int
    errors: List[float]  # |best-so-far energy - exact| per evaluation
    phases: List[str]  # "seed" / "warmup" / "search" / "refine" per evaluation
    exact_energy: float
    hf_error: float
    reached_chemical_accuracy_at: Optional[int]

    @property
    def final_error(self) -> float:
        return self.errors[-1]

    @property
    def best_error_in_warmup(self) -> float:
        warmup_errors = [
            error for error, phase in zip(self.errors, self.phases) if phase in ("seed", "warmup")
        ]
        return min(warmup_errors) if warmup_errors else float("inf")


def run_search_trace(
    molecule: str = "H2O",
    bond_length: float = 4.0,
    max_evaluations: int = 400,
    warmup_fraction: float = 0.5,
    seed: Optional[int] = 0,
) -> SearchTraceResult:
    """Run one CAFQA search and return its best-so-far error trace."""
    problem = make_problem(molecule, bond_length)
    if problem.exact_energy is None:
        raise ValueError(f"{molecule} at {bond_length} A has no exact reference")
    search = CafqaSearch(problem, warmup_fraction=warmup_fraction, seed=seed)
    result = search.run(max_evaluations=max_evaluations)

    observations = result.search_result.observations
    errors: List[float] = []
    phases: List[str] = []
    best = float("inf")
    reached_at = None
    for observation in observations:
        # Track the plain (unconstrained) energy of the incumbent so the trace
        # is comparable with the exact energy.
        energy = search.objective.energy(observation.point)
        best = min(best, energy)
        error = abs(best - problem.exact_energy)
        errors.append(error)
        phases.append(observation.phase)
        if reached_at is None and error <= CHEMICAL_ACCURACY:
            reached_at = observation.iteration

    warmup_count = sum(1 for phase in phases if phase in ("seed", "warmup"))
    return SearchTraceResult(
        molecule=molecule,
        bond_length=bond_length,
        warmup_evaluations=warmup_count,
        errors=errors,
        phases=phases,
        exact_energy=problem.exact_energy,
        hf_error=abs(problem.hf_energy - problem.exact_energy),
        reached_chemical_accuracy_at=reached_at,
    )

"""Fig. 7 — Bayesian-optimization search trace with warm-up phase.

Reproduces the shape of the paper's H2O search trace: during the random
warm-up the best-so-far error improves slowly; once the surrogate-guided
phase starts, the error drops and (for favourable geometries) crosses the
chemical-accuracy threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.chemistry.molecules import make_problem
from repro.core.metrics import CHEMICAL_ACCURACY
from repro.core.objective import CliffordObjective
from repro.core.orchestrator import SearchOrchestrator


@dataclass
class SearchTraceResult:
    molecule: str
    bond_length: float
    warmup_evaluations: int
    errors: List[float]  # |best-so-far energy - exact| per evaluation
    phases: List[str]  # "seed" / "warmup" / "search" / "refine" per evaluation
    exact_energy: float
    hf_error: float
    reached_chemical_accuracy_at: Optional[int]

    @property
    def final_error(self) -> float:
        return self.errors[-1]

    @property
    def best_error_in_warmup(self) -> float:
        warmup_errors = [
            error for error, phase in zip(self.errors, self.phases) if phase in ("seed", "warmup")
        ]
        return min(warmup_errors) if warmup_errors else float("inf")


def run_search_trace(
    molecule: str = "H2O",
    bond_length: float = 4.0,
    max_evaluations: int = 400,
    warmup_fraction: float = 0.5,
    seed: Optional[int] = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
) -> SearchTraceResult:
    """Run a CAFQA search and return the best restart's best-so-far error trace.

    ``num_seeds > 1`` shards independent restarts across worker processes via
    the orchestrator and traces the winning restart (the paper reports the
    best-of-many-seeds trajectory per molecule).
    """
    problem = make_problem(molecule, bond_length)
    if problem.exact_energy is None:
        raise ValueError(f"{molecule} at {bond_length} A has no exact reference")
    orchestrator = SearchOrchestrator(
        problem,
        num_restarts=num_seeds,
        max_workers=max_workers,
        seed=seed,
        warmup_fraction=warmup_fraction,
    )
    multi = orchestrator.run(max_evaluations=max_evaluations)

    observations = multi.best_trace.observations
    # Plain (unconstrained) energies of the whole trace in one batched
    # simulation, so the trace is comparable with the exact energy.
    objective = CliffordObjective(problem, orchestrator.ansatz)
    energies = objective.energy_batch([obs.point for obs in observations])
    errors: List[float] = []
    phases: List[str] = []
    best = float("inf")
    reached_at = None
    for observation, energy in zip(observations, energies):
        best = min(best, float(energy))
        error = abs(best - problem.exact_energy)
        errors.append(error)
        phases.append(observation.phase)
        if reached_at is None and error <= CHEMICAL_ACCURACY:
            reached_at = observation.iteration

    warmup_count = sum(1 for phase in phases if phase in ("seed", "warmup"))
    return SearchTraceResult(
        molecule=molecule,
        bond_length=bond_length,
        warmup_evaluations=warmup_count,
        errors=errors,
        phases=phases,
        exact_energy=problem.exact_energy,
        hf_error=abs(problem.hf_energy - problem.exact_energy),
        reached_chemical_accuracy_at=reached_at,
    )

"""Fig. 14 — post-CAFQA VQE convergence vs Hartree–Fock initialization.

Tunes the LiH ansatz with SPSA starting from (a) the CAFQA Clifford point and
(b) the Hartree–Fock point, on both an ideal backend and a noisy fake device.
The qualitative results to reproduce: CAFQA-initialized tuning starts lower,
stays lower, and reaches any fixed energy threshold in fewer iterations
(about 2.5x fewer in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.chemistry.molecules import make_problem
from repro.core.search import CafqaSearch
from repro.core.vqe import VQERunner, VQEResult
from repro.noise.devices import fake_device
from repro.optim.spsa import SPSA


@dataclass
class ConvergenceComparison:
    """CAFQA-vs-HF VQE traces for one backend (ideal or noisy)."""

    cafqa: VQEResult
    hartree_fock: VQEResult

    def speedup_to_threshold(self, threshold: float) -> Optional[float]:
        """How many times faster CAFQA reaches ``threshold`` than HF (None if either fails)."""
        cafqa_iterations = self.cafqa.iterations_to_reach(threshold)
        hf_iterations = self.hartree_fock.iterations_to_reach(threshold)
        if cafqa_iterations is None or hf_iterations is None:
            return None
        return hf_iterations / max(cafqa_iterations, 1)


@dataclass
class VQEConvergenceResult:
    molecule: str
    bond_length: float
    exact_energy: Optional[float]
    hf_energy: float
    cafqa_energy: float
    comparisons: Dict[str, ConvergenceComparison]

    def convergence_speedup(self, backend: str = "ideal", margin: float = 0.5) -> Optional[float]:
        """Speedup to reach HF-initialized tuning's final energy (plus a margin of its gain)."""
        comparison = self.comparisons[backend]
        hf_final = comparison.hartree_fock.final_energy
        hf_initial = comparison.hartree_fock.initial_energy
        threshold = hf_final + margin * max(hf_initial - hf_final, 0.0) * 0.0 + hf_final
        return comparison.speedup_to_threshold(threshold)


def run_vqe_convergence(
    molecule: str = "LiH",
    bond_length: float = 4.0,
    search_evaluations: int = 300,
    vqe_iterations: int = 100,
    ansatz_reps: int = 1,
    noisy_device: str = "casablanca_like",
    seed: int = 0,
) -> VQEConvergenceResult:
    """Generate the Fig. 14 comparison for one molecule/bond length."""
    problem = make_problem(molecule, bond_length)
    search = CafqaSearch(problem, ansatz_reps=ansatz_reps, seed=seed)
    cafqa = search.run(max_evaluations=search_evaluations)

    comparisons: Dict[str, ConvergenceComparison] = {}
    for backend_name, noise_model in (("ideal", None), ("noisy", fake_device(noisy_device))):
        runner = VQERunner(
            problem,
            ansatz=search.ansatz,
            noise_model=noise_model,
            optimizer=SPSA(seed=seed),
        )
        from_cafqa = runner.run_from_cafqa(cafqa, max_iterations=vqe_iterations)
        from_hf = runner.run_from_hartree_fock(max_iterations=vqe_iterations)
        comparisons[backend_name] = ConvergenceComparison(cafqa=from_cafqa, hartree_fock=from_hf)

    return VQEConvergenceResult(
        molecule=molecule,
        bond_length=bond_length,
        exact_energy=problem.exact_energy,
        hf_energy=problem.hf_energy,
        cafqa_energy=cafqa.energy,
        comparisons=comparisons,
    )

"""Fig. 12 — large molecule with no exact reference (Cr2 in the paper).

Cr2 needs d-orbital integrals over 36 orbitals and week-long searches, so the
reproduction exercises the same code path — a large, strongly correlated
system where only CAFQA-vs-HF comparisons are possible — with a hydrogen
chain (H10, 18 qubits by default).  The qualitative result to reproduce:
CAFQA's initialization energy is at or below Hartree–Fock at every bond
length, with the gap growing at stretched geometries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.chemistry.molecules import get_preset, make_problem
from repro.core.orchestrator import SearchOrchestrator
from repro.experiments.config import ExperimentScale, QUICK, spread_bond_lengths


@dataclass
class LargeMoleculePoint:
    bond_length: float
    hf_energy: float
    cafqa_energy: float
    num_qubits: int
    search_iterations: int

    @property
    def improvement(self) -> float:
        return self.hf_energy - self.cafqa_energy


@dataclass
class LargeMoleculeResult:
    molecule: str
    points: List[LargeMoleculePoint]

    def cafqa_never_worse_than_hf(self) -> bool:
        return all(point.improvement >= -1e-9 for point in self.points)

    @property
    def mean_improvement(self) -> float:
        return sum(point.improvement for point in self.points) / len(self.points)


def run_large_molecule(
    molecule: str = "H10",
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
) -> LargeMoleculeResult:
    """CAFQA vs HF for a molecule too large for exact diagonalization.

    These are the longest searches in the suite, so they benefit most from
    sharding: ``num_seeds``/``max_workers`` run best-of-N restarts per bond
    length through the orchestrator.
    """
    preset = get_preset(molecule)
    if bond_lengths is None:
        low, high = preset.bond_length_range
        bond_lengths = spread_bond_lengths(low, high, max(2, scale.bond_lengths_per_curve // 2))
    budget = scale.search_evaluations(preset.expected_qubits or 18)
    points: List[LargeMoleculePoint] = []
    for index, bond_length in enumerate(bond_lengths):
        problem = make_problem(molecule, bond_length, compute_exact=False)
        orchestrator = SearchOrchestrator(
            problem, num_restarts=num_seeds, max_workers=max_workers, seed=seed + index
        )
        multi = orchestrator.run(max_evaluations=budget)
        points.append(
            LargeMoleculePoint(
                bond_length=float(bond_length),
                hf_energy=problem.hf_energy,
                cafqa_energy=multi.best.energy,
                num_qubits=problem.num_qubits,
                search_iterations=multi.total_evaluations,
            )
        )
    return LargeMoleculeResult(molecule=molecule, points=points)

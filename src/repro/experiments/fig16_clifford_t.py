"""Fig. 16 — CAFQA + kT dissociation curves (beyond-Clifford exploration).

Runs the Clifford-only search and the Clifford+<=kT search (k=1 for H2, k=4
for LiH in the paper) at a set of bond lengths.  The qualitative result to
reproduce: allowing a handful of T gates recovers additional correlation
energy at the bond lengths where Clifford-only CAFQA is limited, while the
circuits stay classically simulable (the branch count is 2^k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.chemistry.molecules import get_preset, make_problem
from repro.core.metrics import correlation_energy_recovered
from repro.core.search import CafqaSearch
from repro.core.tgates import CliffordTSearch
from repro.experiments.config import ExperimentScale, QUICK, spread_bond_lengths


@dataclass
class CliffordTPoint:
    bond_length: float
    hf_energy: float
    exact_energy: Optional[float]
    clifford_energy: float
    clifford_t_energy: float
    num_t_gates_used: int

    @property
    def clifford_correlation(self) -> Optional[float]:
        if self.exact_energy is None:
            return None
        return correlation_energy_recovered(
            self.clifford_energy, self.hf_energy, self.exact_energy
        )

    @property
    def clifford_t_correlation(self) -> Optional[float]:
        if self.exact_energy is None:
            return None
        return correlation_energy_recovered(
            self.clifford_t_energy, self.hf_energy, self.exact_energy
        )


@dataclass
class CliffordTCurveResult:
    molecule: str
    max_t_gates: int
    points: List[CliffordTPoint]

    def t_gates_never_hurt(self) -> bool:
        """CAFQA+kT should always be at least as good as Clifford-only CAFQA."""
        return all(
            point.clifford_t_energy <= point.clifford_energy + 1e-9 for point in self.points
        )

    def max_extra_correlation(self) -> float:
        extras = [
            (point.clifford_t_correlation or 0.0) - (point.clifford_correlation or 0.0)
            for point in self.points
        ]
        return max(extras) if extras else 0.0


def run_clifford_t_curve(
    molecule: str = "H2",
    max_t_gates: int = 1,
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    ansatz_reps: int = 1,
) -> CliffordTCurveResult:
    """Clifford-only vs Clifford+kT initialization quality across bond lengths."""
    preset = get_preset(molecule)
    if bond_lengths is None:
        low, high = preset.bond_length_range
        bond_lengths = spread_bond_lengths(low, high, max(2, scale.bond_lengths_per_curve))
    clifford_budget = scale.search_evaluations(preset.expected_qubits or 4)
    t_budget = scale.clifford_t_evaluations

    points: List[CliffordTPoint] = []
    for index, bond_length in enumerate(bond_lengths):
        problem = make_problem(molecule, bond_length)
        clifford_search = CafqaSearch(problem, ansatz_reps=ansatz_reps, seed=seed + index)
        clifford = clifford_search.run(max_evaluations=clifford_budget)
        # Seed the Clifford+T search with the Clifford solution (doubled indices
        # map pi/2 multiples into the pi/4 grid), so it can only improve on it.
        seed_point = [2 * value for value in clifford.best_indices]
        t_search = CliffordTSearch(
            problem,
            max_t_gates=max_t_gates,
            ansatz=clifford_search.ansatz,
            seed=seed + index,
            seed_point=seed_point,
        )
        clifford_t = t_search.run(max_evaluations=t_budget)
        best_t_energy = min(clifford_t.energy, clifford.energy)
        points.append(
            CliffordTPoint(
                bond_length=float(bond_length),
                hf_energy=problem.hf_energy,
                exact_energy=problem.exact_energy,
                clifford_energy=clifford.energy,
                clifford_t_energy=best_t_energy,
                num_t_gates_used=clifford_t.num_t_gates,
            )
        )
    return CliffordTCurveResult(molecule=molecule, max_t_gates=max_t_gates, points=points)

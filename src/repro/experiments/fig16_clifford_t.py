"""Fig. 16 — CAFQA + kT dissociation curves (beyond-Clifford exploration).

Runs the Clifford-only search and the Clifford+<=kT search (k=1 for H2, k=4
for LiH in the paper) at a set of bond lengths.  The qualitative result to
reproduce: allowing a handful of T gates recovers additional correlation
energy at the bond lengths where Clifford-only CAFQA is limited, while the
circuits stay classically simulable (the branch count is 2^k).

The Clifford stage runs as a campaign sweep (:func:`repro.run_sweep`), so it
honors ``num_seeds`` / ``max_workers`` and shares the sweep's evaluation
cache and memo directory; the Clifford+T refinement stays a direct
:class:`~repro.core.tgates.CliffordTSearch` seeded from each point's Clifford
solution.  :func:`run_clifford_t_sweep` stacks curves over a list of
t-budgets against one shared directory pair — the Clifford baselines are
identical across budgets, so every budget after the first replays them as
whole-run cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.chemistry.molecules import get_preset
from repro.circuits.ansatz import EfficientSU2Ansatz
from repro.core.metrics import correlation_energy_recovered
from repro.core.tgates import CliffordTSearch
from repro.experiments.config import ExperimentScale, QUICK, spread_bond_lengths
from repro.experiments.dissociation import curve_sweepspec
from repro.sweepspec import run_sweep


@dataclass
class CliffordTPoint:
    bond_length: float
    hf_energy: float
    exact_energy: Optional[float]
    clifford_energy: float
    clifford_t_energy: float
    num_t_gates_used: int

    @property
    def clifford_correlation(self) -> Optional[float]:
        if self.exact_energy is None:
            return None
        return correlation_energy_recovered(
            self.clifford_energy, self.hf_energy, self.exact_energy
        )

    @property
    def clifford_t_correlation(self) -> Optional[float]:
        if self.exact_energy is None:
            return None
        return correlation_energy_recovered(
            self.clifford_t_energy, self.hf_energy, self.exact_energy
        )


@dataclass
class CliffordTCurveResult:
    molecule: str
    max_t_gates: int
    points: List[CliffordTPoint]

    def t_gates_never_hurt(self) -> bool:
        """CAFQA+kT should always be at least as good as Clifford-only CAFQA."""
        return all(
            point.clifford_t_energy <= point.clifford_energy + 1e-9 for point in self.points
        )

    def max_extra_correlation(self) -> float:
        extras = [
            (point.clifford_t_correlation or 0.0) - (point.clifford_correlation or 0.0)
            for point in self.points
        ]
        return max(extras) if extras else 0.0


@dataclass
class CliffordTSweepResult:
    """Curves for one molecule across several t-budgets, one shared cache."""

    molecule: str
    t_budgets: List[int]
    curves: List[CliffordTCurveResult]

    def curve_for(self, max_t_gates: int) -> Optional[CliffordTCurveResult]:
        for curve in self.curves:
            if curve.max_t_gates == max_t_gates:
                return curve
        return None

    def more_t_never_hurts(self) -> bool:
        """At each point, a larger t-budget should not do worse than a smaller one."""
        for previous, current in zip(self.curves, self.curves[1:]):
            for before, after in zip(previous.points, current.points):
                if after.clifford_t_energy > before.clifford_t_energy + 1e-9:
                    return False
        return True


def run_clifford_t_curve(
    molecule: str = "H2",
    max_t_gates: int = 1,
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    ansatz_reps: int = 1,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CliffordTCurveResult:
    """Clifford-only vs Clifford+kT initialization quality across bond lengths."""
    preset = get_preset(molecule)
    if bond_lengths is None:
        low, high = preset.bond_length_range
        bond_lengths = spread_bond_lengths(low, high, max(2, scale.bond_lengths_per_curve))
    clifford_budget = scale.search_evaluations(preset.expected_qubits or 4)
    t_budget = scale.clifford_t_evaluations

    clifford_report = run_sweep(
        curve_sweepspec(
            molecule,
            bond_lengths,
            max_evaluations=clifford_budget,
            seed=seed,
            ansatz_reps=ansatz_reps,
            num_seeds=num_seeds,
            max_workers=max_workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            name=f"fig16:{molecule}-clifford",
        ),
        log=log,
    )

    points: List[CliffordTPoint] = []
    for row in clifford_report.runs:
        if row.report is not None:
            problem = row.report.problem
            ansatz = row.report.best.ansatz
            best_indices = row.report.best_indices
        else:
            # Memoized Clifford point: the search objects were never
            # materialized, so rebuild the problem and the (deterministic)
            # default ansatz, and take the winning point from the record.
            problem = row.spec.resolve_problem()
            ansatz = EfficientSU2Ansatz(problem.num_qubits, reps=ansatz_reps)
            best_indices = [int(value) for value in row.summary["best_indices"]]
        clifford_energy = row.energy
        # Seed the Clifford+T search with the Clifford solution (doubled indices
        # map pi/2 multiples into the pi/4 grid), so it can only improve on it.
        seed_point = [2 * value for value in best_indices]
        t_search = CliffordTSearch(
            problem,
            max_t_gates=max_t_gates,
            ansatz=ansatz,
            seed=row.spec.seed,
            seed_point=seed_point,
        )
        clifford_t = t_search.run(max_evaluations=t_budget)
        best_t_energy = min(clifford_t.energy, clifford_energy)
        points.append(
            CliffordTPoint(
                bond_length=float(row.coords["problem_options.bond_length"]),
                hf_energy=problem.hf_energy,
                exact_energy=problem.exact_energy,
                clifford_energy=clifford_energy,
                clifford_t_energy=best_t_energy,
                num_t_gates_used=clifford_t.num_t_gates,
            )
        )
    return CliffordTCurveResult(molecule=molecule, max_t_gates=max_t_gates, points=points)


def run_clifford_t_sweep(
    molecule: str = "H2",
    t_budgets: Sequence[int] = (1, 2),
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    ansatz_reps: int = 1,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CliffordTSweepResult:
    """One molecule's Clifford+T curves across several t-budgets.

    All budgets share one cache/checkpoint directory pair: the Clifford
    baseline sweep is the same run regardless of ``max_t_gates``, so every
    budget after the first replays it from the campaign memo instead of
    re-searching.
    """
    curves = [
        run_clifford_t_curve(
            molecule,
            max_t_gates=int(budget),
            scale=scale,
            bond_lengths=bond_lengths,
            seed=seed,
            ansatz_reps=ansatz_reps,
            num_seeds=num_seeds,
            max_workers=max_workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            log=log,
        )
        for budget in t_budgets
    ]
    return CliffordTSweepResult(
        molecule=molecule, t_budgets=[int(budget) for budget in t_budgets], curves=curves
    )

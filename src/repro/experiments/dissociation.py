"""Figs. 8–11 — dissociation curves (energy, error, correlation recovered).

One driver covers the four detailed molecules (H2, LiH, H2O, H6); per-figure
wrappers add the figure-specific extras: the H2+ cation series (Fig. 8), the
singlet/triplet spin sectors for H2O (Fig. 10), and the spin-sector-optimized
"opt." series for H6 (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chemistry.molecules import get_preset, make_problem
from repro.core.constraints import ParticleConstraint
from repro.core.metrics import AccuracySummary
from repro.core.pipeline import MoleculeEvaluation, evaluate_molecule
from repro.experiments.config import ExperimentScale, QUICK, spread_bond_lengths


@dataclass
class DissociationPoint:
    """All series of a dissociation figure at a single bond length."""

    bond_length: float
    hf_energy: float
    cafqa_energy: float
    exact_energy: Optional[float]
    extra_series: Dict[str, float] = field(default_factory=dict)

    @property
    def summary(self) -> AccuracySummary:
        return AccuracySummary(
            molecule="",
            bond_length=self.bond_length,
            hf_energy=self.hf_energy,
            cafqa_energy=self.cafqa_energy,
            exact_energy=self.exact_energy,
        )


@dataclass
class DissociationCurveResult:
    molecule: str
    points: List[DissociationPoint]
    scale_name: str

    @property
    def bond_lengths(self) -> List[float]:
        return [point.bond_length for point in self.points]

    @property
    def cafqa_errors(self) -> List[Optional[float]]:
        return [point.summary.cafqa_error for point in self.points]

    @property
    def hf_errors(self) -> List[Optional[float]]:
        return [point.summary.hf_error for point in self.points]

    @property
    def correlation_recovered(self) -> List[Optional[float]]:
        return [point.summary.recovered_correlation for point in self.points]

    def max_correlation_recovered(self) -> float:
        values = [value for value in self.correlation_recovered if value is not None]
        return max(values) if values else 0.0

    def cafqa_never_worse_than_hf(self) -> bool:
        return all(point.cafqa_energy <= point.hf_energy + 1e-9 for point in self.points)


def _default_bond_lengths(molecule: str, scale: ExperimentScale) -> Sequence[float]:
    preset = get_preset(molecule)
    low, high = preset.bond_length_range
    return spread_bond_lengths(low, high, scale.bond_lengths_per_curve)


def run_dissociation_curve(
    molecule: str,
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    ansatz_reps: int = 1,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
) -> DissociationCurveResult:
    """HF / CAFQA / exact dissociation curve for one molecule.

    ``num_seeds`` / ``max_workers`` shard best-of-N restarts per bond length
    through the search orchestrator.
    """
    preset = get_preset(molecule)
    lengths = bond_lengths if bond_lengths is not None else _default_bond_lengths(molecule, scale)
    budget = scale.search_evaluations(preset.expected_qubits or 12)
    points: List[DissociationPoint] = []
    for index, bond_length in enumerate(lengths):
        evaluation = evaluate_molecule(
            molecule,
            bond_length=bond_length,
            max_evaluations=budget,
            seed=seed + index,
            ansatz_reps=ansatz_reps,
            num_seeds=num_seeds,
            max_workers=max_workers,
        )
        points.append(
            DissociationPoint(
                bond_length=bond_length,
                hf_energy=evaluation.hf_energy,
                cafqa_energy=evaluation.cafqa_energy,
                exact_energy=evaluation.exact_energy,
            )
        )
    return DissociationCurveResult(molecule=molecule, points=points, scale_name=scale.name)


# --------------------------------------------------------------------------- #
# figure-specific wrappers
# --------------------------------------------------------------------------- #
def run_fig08_h2(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> DissociationCurveResult:
    """Fig. 8: H2 dissociation plus the electron-count-constrained H2+ cation."""
    result = run_dissociation_curve("H2", scale=scale, bond_lengths=bond_lengths, seed=seed)
    budget = scale.search_evaluations(2)
    for index, point in enumerate(result.points):
        cation = evaluate_molecule(
            "H2+",
            bond_length=point.bond_length,
            max_evaluations=budget,
            seed=seed + 1000 + index,
            particle_sector=(1, 0),
            constraint=ParticleConstraint(num_alpha=1, num_beta=0, weight=4.0),
        )
        point.extra_series["cafqa_cation"] = cation.cafqa_energy
    return result


def run_fig09_lih(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> DissociationCurveResult:
    """Fig. 9: LiH dissociation curve."""
    return run_dissociation_curve(
        "LiH", scale=scale, bond_lengths=bond_lengths, seed=seed, ansatz_reps=2
    )


def run_fig10_h2o(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> DissociationCurveResult:
    """Fig. 10: H2O dissociation, with singlet- and triplet-sector CAFQA series.

    The paper generates separate spin-optimized Hamiltonians; here the triplet
    series reuses the same Hamiltonian with a (n_alpha+1, n_beta-1) particle
    sector and spin-aware constraints (see DESIGN.md substitutions).
    """
    result = run_dissociation_curve("H2O", scale=scale, bond_lengths=bond_lengths, seed=seed)
    preset = get_preset("H2O")
    budget = scale.search_evaluations(preset.expected_qubits or 12)
    for index, point in enumerate(result.points):
        problem = make_problem("H2O", point.bond_length, compute_exact=False)
        triplet_sector = (problem.num_alpha + 1, problem.num_beta - 1)
        triplet = evaluate_molecule(
            "H2O",
            bond_length=point.bond_length,
            max_evaluations=budget,
            seed=seed + 2000 + index,
            particle_sector=triplet_sector,
            constraint=ParticleConstraint(*triplet_sector, weight=4.0),
            compute_exact=False,
        )
        point.extra_series["cafqa_singlet"] = point.cafqa_energy
        point.extra_series["cafqa_triplet"] = triplet.cafqa_energy
        # The headline CAFQA series takes the better of the two sectors.
        point.cafqa_energy = min(point.cafqa_energy, triplet.cafqa_energy)
    return result


def run_fig11_h6(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> DissociationCurveResult:
    """Fig. 11: H6 dissociation, with the spin-sector-optimized "opt." series."""
    result = run_dissociation_curve("H6", scale=scale, bond_lengths=bond_lengths, seed=seed)
    preset = get_preset("H6")
    budget = scale.search_evaluations(preset.expected_qubits or 10)
    for index, point in enumerate(result.points):
        problem = make_problem("H6", point.bond_length, compute_exact=False)
        best_optimized = point.cafqa_energy
        # Try higher-spin sectors as well and keep the best estimate.
        for sector_shift in (1, 2):
            sector = (problem.num_alpha + sector_shift, problem.num_beta - sector_shift)
            if sector[1] < 0:
                continue
            optimized = evaluate_molecule(
                "H6",
                bond_length=point.bond_length,
                max_evaluations=budget,
                seed=seed + 3000 + 10 * index + sector_shift,
                particle_sector=sector,
                constraint=ParticleConstraint(*sector, weight=4.0),
                compute_exact=False,
            )
            best_optimized = min(best_optimized, optimized.cafqa_energy)
        point.extra_series["cafqa_opt"] = best_optimized
    return result

"""Figs. 8–11 — dissociation curves (energy, error, correlation recovered).

One driver covers the four detailed molecules (H2, LiH, H2O, H6); per-figure
wrappers add the figure-specific extras: the H2+ cation series (Fig. 8), the
singlet/triplet spin sectors for H2O (Fig. 10), and the spin-sector-optimized
"opt." series for H6 (Fig. 11).

Every series is a declarative sweep through the campaign engine
(:class:`repro.SweepSpec` + :func:`repro.run_sweep`): the base curve and the
extra series share one evaluation cache and one memo directory, so the
constrained re-runs of the same Hamiltonians reuse stabilizer evaluations
instead of re-paying them, and a re-run figure replays finished points as
digest-level cache hits.  ``num_seeds`` / ``max_workers`` are forwarded to
*every* series (historically the extra series silently dropped them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.chemistry.molecules import get_preset, make_problem
from repro.core.campaign import SweepReport
from repro.core.constraints import ParticleConstraint
from repro.core.metrics import AccuracySummary
from repro.experiments.config import ExperimentScale, QUICK, spread_bond_lengths
from repro.runspec import RunSpec
from repro.sweepspec import SweepSpec, run_sweep


@dataclass
class DissociationPoint:
    """All series of a dissociation figure at a single bond length."""

    bond_length: float
    hf_energy: float
    cafqa_energy: float
    exact_energy: Optional[float]
    extra_series: Dict[str, float] = field(default_factory=dict)

    @property
    def summary(self) -> AccuracySummary:
        return AccuracySummary(
            molecule="",
            bond_length=self.bond_length,
            hf_energy=self.hf_energy,
            cafqa_energy=self.cafqa_energy,
            exact_energy=self.exact_energy,
        )


@dataclass
class DissociationCurveResult:
    molecule: str
    points: List[DissociationPoint]
    scale_name: str

    @property
    def bond_lengths(self) -> List[float]:
        return [point.bond_length for point in self.points]

    @property
    def cafqa_errors(self) -> List[Optional[float]]:
        return [point.summary.cafqa_error for point in self.points]

    @property
    def hf_errors(self) -> List[Optional[float]]:
        return [point.summary.hf_error for point in self.points]

    @property
    def correlation_recovered(self) -> List[Optional[float]]:
        return [point.summary.recovered_correlation for point in self.points]

    def max_correlation_recovered(self) -> float:
        values = [value for value in self.correlation_recovered if value is not None]
        return max(values) if values else 0.0

    def cafqa_never_worse_than_hf(self) -> bool:
        return all(point.cafqa_energy <= point.hf_energy + 1e-9 for point in self.points)


def _default_bond_lengths(molecule: str, scale: ExperimentScale) -> Sequence[float]:
    preset = get_preset(molecule)
    low, high = preset.bond_length_range
    return spread_bond_lengths(low, high, scale.bond_lengths_per_curve)


def curve_sweepspec(
    molecule: str,
    bond_lengths: Sequence[float],
    max_evaluations: int,
    seed: int = 0,
    ansatz_reps: int = 1,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    compute_exact: bool = True,
    particle_sector: Optional[tuple] = None,
    constraint: Optional[ParticleConstraint] = None,
    name: Optional[str] = None,
) -> SweepSpec:
    """The sweep one dissociation series runs: one bond-length axis.

    Exposed (rather than inlined in the drivers) so tests can assert the
    knob-forwarding contract — ``num_seeds`` / ``max_workers`` and the
    shared cache/checkpoint directories reach every series — without paying
    for the searches.
    """
    base = RunSpec(
        problem=molecule,
        problem_options={
            "bond_length": float(bond_lengths[0]),
            "compute_exact": compute_exact,
            "particle_sector": particle_sector,
        },
        ansatz_reps=ansatz_reps,
        max_evaluations=int(max_evaluations),
        num_seeds=num_seeds,
        seed=seed,
        max_workers=max_workers,
        search_options={"constraint": constraint, "spin_z_target": None},
    )
    return SweepSpec(
        base=base,
        axes={"problem_options.bond_length": [float(b) for b in bond_lengths]},
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
        name=name or f"dissociation:{molecule}",
    )


def _series_energies(report: SweepReport) -> List[float]:
    """Per-point CAFQA energies of one swept series, in bond-length order."""
    return [float(row.summary["energy"]) for row in report.runs]


def run_dissociation_curve(
    molecule: str,
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    ansatz_reps: int = 1,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> DissociationCurveResult:
    """HF / CAFQA / exact dissociation curve for one molecule.

    ``num_seeds`` / ``max_workers`` shard best-of-N restarts per bond length
    through the search orchestrator; ``cache_dir`` / ``checkpoint_dir`` make
    the sweep resumable and shared with any other series run against them.
    """
    preset = get_preset(molecule)
    lengths = bond_lengths if bond_lengths is not None else _default_bond_lengths(molecule, scale)
    budget = scale.search_evaluations(preset.expected_qubits or 12)
    sweep = curve_sweepspec(
        molecule,
        lengths,
        max_evaluations=budget,
        seed=seed,
        ansatz_reps=ansatz_reps,
        num_seeds=num_seeds,
        max_workers=max_workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
    )
    report = run_sweep(sweep, log=log)
    points = [
        DissociationPoint(
            bond_length=float(row.coords["problem_options.bond_length"]),
            hf_energy=float(row.summary["reference_energy"]),
            cafqa_energy=float(row.summary["energy"]),
            exact_energy=row.summary.get("exact_energy"),
        )
        for row in report.runs
    ]
    return DissociationCurveResult(molecule=molecule, points=points, scale_name=scale.name)


# --------------------------------------------------------------------------- #
# figure-specific wrappers
# --------------------------------------------------------------------------- #
def run_fig08_h2(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> DissociationCurveResult:
    """Fig. 8: H2 dissociation plus the electron-count-constrained H2+ cation."""
    result = run_dissociation_curve(
        "H2",
        scale=scale,
        bond_lengths=bond_lengths,
        seed=seed,
        num_seeds=num_seeds,
        max_workers=max_workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
    )
    cation = run_sweep(
        curve_sweepspec(
            "H2+",
            result.bond_lengths,
            max_evaluations=scale.search_evaluations(2),
            seed=seed + 1000,
            num_seeds=num_seeds,
            max_workers=max_workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            particle_sector=(1, 0),
            constraint=ParticleConstraint(num_alpha=1, num_beta=0, weight=4.0),
            name="fig08:H2+cation",
        )
    )
    for point, energy in zip(result.points, _series_energies(cation)):
        point.extra_series["cafqa_cation"] = energy
    return result


def run_fig09_lih(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> DissociationCurveResult:
    """Fig. 9: LiH dissociation curve."""
    return run_dissociation_curve(
        "LiH",
        scale=scale,
        bond_lengths=bond_lengths,
        seed=seed,
        ansatz_reps=2,
        num_seeds=num_seeds,
        max_workers=max_workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
    )


def run_fig10_h2o(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> DissociationCurveResult:
    """Fig. 10: H2O dissociation, with singlet- and triplet-sector CAFQA series.

    The paper generates separate spin-optimized Hamiltonians; here the triplet
    series reuses the same Hamiltonian with a (n_alpha+1, n_beta-1) particle
    sector and spin-aware constraints (see DESIGN.md substitutions).
    """
    result = run_dissociation_curve(
        "H2O",
        scale=scale,
        bond_lengths=bond_lengths,
        seed=seed,
        num_seeds=num_seeds,
        max_workers=max_workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
    )
    preset = get_preset("H2O")
    budget = scale.search_evaluations(preset.expected_qubits or 12)
    # Electron counts do not depend on the geometry, so the triplet sector is
    # computed once rather than once per bond length.
    problem = make_problem("H2O", result.bond_lengths[0], compute_exact=False)
    triplet_sector = (problem.num_alpha + 1, problem.num_beta - 1)
    triplet = run_sweep(
        curve_sweepspec(
            "H2O",
            result.bond_lengths,
            max_evaluations=budget,
            seed=seed + 2000,
            num_seeds=num_seeds,
            max_workers=max_workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            compute_exact=False,
            particle_sector=triplet_sector,
            constraint=ParticleConstraint(*triplet_sector, weight=4.0),
            name="fig10:H2O-triplet",
        )
    )
    for point, energy in zip(result.points, _series_energies(triplet)):
        point.extra_series["cafqa_singlet"] = point.cafqa_energy
        point.extra_series["cafqa_triplet"] = energy
        # The headline CAFQA series takes the better of the two sectors.
        point.cafqa_energy = min(point.cafqa_energy, energy)
    return result


def run_fig11_h6(
    scale: ExperimentScale = QUICK,
    bond_lengths: Optional[Sequence[float]] = None,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> DissociationCurveResult:
    """Fig. 11: H6 dissociation, with the spin-sector-optimized "opt." series."""
    result = run_dissociation_curve(
        "H6",
        scale=scale,
        bond_lengths=bond_lengths,
        seed=seed,
        num_seeds=num_seeds,
        max_workers=max_workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
    )
    preset = get_preset("H6")
    budget = scale.search_evaluations(preset.expected_qubits or 10)
    problem = make_problem("H6", result.bond_lengths[0], compute_exact=False)
    best_optimized = [point.cafqa_energy for point in result.points]
    # Try higher-spin sectors as well and keep the best estimate per point.
    for sector_shift in (1, 2):
        sector = (problem.num_alpha + sector_shift, problem.num_beta - sector_shift)
        if sector[1] < 0:
            continue
        optimized = run_sweep(
            curve_sweepspec(
                "H6",
                result.bond_lengths,
                max_evaluations=budget,
                seed=seed + 3000 + 1000 * sector_shift,
                num_seeds=num_seeds,
                max_workers=max_workers,
                cache_dir=cache_dir,
                checkpoint_dir=checkpoint_dir,
                compute_exact=False,
                particle_sector=sector,
                constraint=ParticleConstraint(*sector, weight=4.0),
                name=f"fig11:H6-shift{sector_shift}",
            )
        )
        best_optimized = [
            min(best, energy)
            for best, energy in zip(best_optimized, _series_energies(optimized))
        ]
    for point, energy in zip(result.points, best_optimized):
        point.extra_series["cafqa_opt"] = energy
    return result

"""Fig. 6 — per-Pauli-term expectation breakdown for LiH at a stretched geometry.

For every Pauli term of the LiH Hamiltonian, compares the expectation value
under (a) the Hartree–Fock computational-basis state, (b) the CAFQA Clifford
state, and (c) the exact ground state.  The qualitative results to reproduce:

* HF expectations are +/-1/0 and vanish on every non-diagonal term;
* CAFQA expectations are +/-1/0 but are non-zero on some non-diagonal terms
  (it captures correlation energy);
* CAFQA's expectations track the exact ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.chemistry.exact import exact_ground_state
from repro.chemistry.molecules import make_problem
from repro.core.objective import CliffordObjective
from repro.core.orchestrator import SearchOrchestrator
from repro.operators.pauli import Pauli
from repro.statevector.simulator import Statevector


@dataclass
class PauliBreakdownRow:
    """Expectations of a single Hamiltonian term under the three methods."""

    label: str
    coefficient: float
    is_diagonal: bool
    hartree_fock: float
    cafqa: float
    exact: float
    cafqa_selected: bool  # non-diagonal term with non-zero CAFQA expectation


@dataclass
class PauliBreakdownResult:
    molecule: str
    bond_length: float
    rows: List[PauliBreakdownRow]
    hf_energy: float
    cafqa_energy: float
    exact_energy: float

    @property
    def num_nondiagonal_selected(self) -> int:
        """Number of non-diagonal terms CAFQA gives non-zero expectation to."""
        return sum(1 for row in self.rows if row.cafqa_selected)

    @property
    def hf_nondiagonal_support(self) -> int:
        """Number of non-diagonal terms with non-zero HF expectation (should be 0)."""
        return sum(
            1 for row in self.rows if not row.is_diagonal and abs(row.hartree_fock) > 1e-9
        )


def run_pauli_breakdown(
    molecule: str = "LiH",
    bond_length: float = 4.8,
    max_evaluations: int = 300,
    seed: Optional[int] = 0,
    num_seeds: int = 2,
    max_workers: Optional[int] = None,
) -> PauliBreakdownResult:
    """Generate the Fig. 6 data for ``molecule`` at ``bond_length``.

    The breakdown is taken at the best point of a best-of-``num_seeds``
    orchestrated search (like the paper's per-molecule searches): whether a
    single restart escapes the diagonal HF basin at small budgets is seed
    luck, while the best of a few restarts reliably captures non-diagonal
    terms.
    """
    problem = make_problem(molecule, bond_length)
    orchestrator = SearchOrchestrator(
        problem, num_restarts=num_seeds, max_workers=max_workers, seed=seed
    )
    cafqa = orchestrator.run(max_evaluations=max_evaluations).best

    hf_state = Statevector.from_bitstring(problem.hf_bits)
    exact = exact_ground_state(problem.hamiltonian)
    objective = CliffordObjective(problem, orchestrator.ansatz)
    cafqa_expectations: Dict[str, int] = objective.term_expectations(cafqa.best_indices)

    rows: List[PauliBreakdownRow] = []
    for term in problem.hamiltonian.terms():
        pauli = Pauli(term.label)
        hf_value = float(np.real(hf_state.expectation(pauli)))
        exact_value = float(np.real(exact.state.expectation(pauli)))
        cafqa_value = float(cafqa_expectations[term.label])
        rows.append(
            PauliBreakdownRow(
                label=term.label,
                coefficient=float(np.real(term.coefficient)),
                is_diagonal=pauli.is_diagonal(),
                hartree_fock=hf_value,
                cafqa=cafqa_value,
                exact=exact_value,
                cafqa_selected=(not pauli.is_diagonal()) and abs(cafqa_value) > 1e-9,
            )
        )

    return PauliBreakdownResult(
        molecule=molecule,
        bond_length=bond_length,
        rows=rows,
        hf_energy=problem.hf_energy,
        cafqa_energy=cafqa.energy,
        exact_energy=exact.energy,
    )

"""Experiment scaling knobs.

The paper's searches run for thousands of iterations (up to a week for Cr2 on
cloud machines).  Every experiment driver in this package takes an
:class:`ExperimentScale` so the same code can run as a minutes-scale benchmark
("quick", the default used by ``benchmarks/``) or closer to the paper's
budgets ("full").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True)
class ExperimentScale:
    """Budgets used by the experiment drivers."""

    name: str
    search_evaluations_small: int  # molecules with <= 6 qubits
    search_evaluations_medium: int  # 7-12 qubits
    search_evaluations_large: int  # > 12 qubits
    vqe_iterations: int
    bond_lengths_per_curve: int
    clifford_t_evaluations: int

    def search_evaluations(self, num_qubits: int) -> int:
        if num_qubits <= 6:
            return self.search_evaluations_small
        if num_qubits <= 12:
            return self.search_evaluations_medium
        return self.search_evaluations_large


SMOKE = ExperimentScale(
    name="smoke",
    search_evaluations_small=80,
    search_evaluations_medium=100,
    search_evaluations_large=120,
    vqe_iterations=30,
    bond_lengths_per_curve=2,
    clifford_t_evaluations=100,
)

QUICK = ExperimentScale(
    name="quick",
    search_evaluations_small=120,
    search_evaluations_medium=180,
    search_evaluations_large=200,
    vqe_iterations=50,
    bond_lengths_per_curve=3,
    clifford_t_evaluations=150,
)

FULL = ExperimentScale(
    name="full",
    search_evaluations_small=1000,
    search_evaluations_medium=3000,
    search_evaluations_large=6000,
    vqe_iterations=400,
    bond_lengths_per_curve=10,
    clifford_t_evaluations=1500,
)

_SCALES: Dict[str, ExperimentScale] = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


def get_scale(name: str = "quick") -> ExperimentScale:
    """Look up a named experiment scale."""
    try:
        return _SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; available: {', '.join(sorted(_SCALES))}") from None


def spread_bond_lengths(low: float, high: float, count: int) -> Sequence[float]:
    """Evenly spaced bond lengths across a molecule's range."""
    if count < 2:
        return [round((low + high) / 2.0, 3)]
    step = (high - low) / (count - 1)
    return [round(low + i * step, 3) for i in range(count)]

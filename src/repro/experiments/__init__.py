"""Per-figure experiment drivers shared by the examples and the benchmark harness."""

from repro.experiments.config import FULL, QUICK, ExperimentScale, get_scale, spread_bond_lengths
from repro.experiments.dissociation import (
    DissociationCurveResult,
    DissociationPoint,
    curve_sweepspec,
    run_dissociation_curve,
    run_fig08_h2,
    run_fig09_lih,
    run_fig10_h2o,
    run_fig11_h6,
)
from repro.experiments.fig05_microbenchmark import (
    MicrobenchmarkResult,
    microbenchmark_circuit,
    run_microbenchmark,
    xx_hamiltonian,
)
from repro.experiments.fig06_pauli_breakdown import PauliBreakdownResult, run_pauli_breakdown
from repro.experiments.fig07_search_trace import SearchTraceResult, run_search_trace
from repro.experiments.fig12_large_molecule import LargeMoleculeResult, run_large_molecule
from repro.experiments.fig13_relative_accuracy import (
    RelativeAccuracyResult,
    run_relative_accuracy,
)
from repro.experiments.fig14_vqe_convergence import VQEConvergenceResult, run_vqe_convergence
from repro.experiments.fig15_search_iterations import (
    SearchIterationsResult,
    run_search_iterations,
)
from repro.experiments.fig16_clifford_t import (
    CliffordTCurveResult,
    CliffordTSweepResult,
    run_clifford_t_curve,
    run_clifford_t_sweep,
)
from repro.experiments.table1 import Table1Result, run_table1, table1_sweepspec

__all__ = [
    "ExperimentScale",
    "QUICK",
    "FULL",
    "get_scale",
    "spread_bond_lengths",
    "run_table1",
    "table1_sweepspec",
    "Table1Result",
    "run_microbenchmark",
    "MicrobenchmarkResult",
    "microbenchmark_circuit",
    "xx_hamiltonian",
    "run_pauli_breakdown",
    "PauliBreakdownResult",
    "run_search_trace",
    "SearchTraceResult",
    "run_dissociation_curve",
    "curve_sweepspec",
    "run_fig08_h2",
    "run_fig09_lih",
    "run_fig10_h2o",
    "run_fig11_h6",
    "DissociationCurveResult",
    "DissociationPoint",
    "run_large_molecule",
    "LargeMoleculeResult",
    "run_relative_accuracy",
    "RelativeAccuracyResult",
    "run_vqe_convergence",
    "VQEConvergenceResult",
    "run_search_iterations",
    "SearchIterationsResult",
    "run_clifford_t_curve",
    "CliffordTCurveResult",
    "run_clifford_t_sweep",
    "CliffordTSweepResult",
]

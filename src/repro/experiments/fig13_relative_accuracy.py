"""Fig. 13 — relative accuracy of CAFQA over Hartree–Fock across the suite.

For each molecule, the relative error reduction (HF error / CAFQA error) is
averaged over the evaluated bond lengths ("Average") and its maximum is
reported ("Maximum", usually at the largest bond length); a geometric-mean
summary row aggregates across molecules.  The qualitative results to
reproduce: every molecule's average is >= 1 (CAFQA never hurts), the maxima
are much larger than the averages, and strongly correlated chains (H6) show
the smallest gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.chemistry.molecules import get_preset
from repro.core.metrics import geometric_mean, relative_accuracy
from repro.core.pipeline import evaluate_molecule
from repro.experiments.config import ExperimentScale, QUICK, spread_bond_lengths

# Molecules included in the paper's Fig. 13 (all but Cr2), mapped to this
# repository's presets (substitutions documented in DESIGN.md).
DEFAULT_SUITE = ("H2", "LiH", "H2O", "N2", "H6", "H8", "H4", "BeH2")


@dataclass
class RelativeAccuracyRow:
    molecule: str
    average: float
    maximum: float
    bond_lengths: List[float]
    per_bond_length: List[float]


@dataclass
class RelativeAccuracyResult:
    rows: List[RelativeAccuracyRow]

    @property
    def geomean_average(self) -> float:
        return geometric_mean([row.average for row in self.rows])

    @property
    def geomean_maximum(self) -> float:
        return geometric_mean([row.maximum for row in self.rows])

    def as_table(self) -> List[Dict[str, object]]:
        table = [
            {
                "molecule": row.molecule,
                "average_relative_accuracy": row.average,
                "maximum_relative_accuracy": row.maximum,
            }
            for row in self.rows
        ]
        table.append(
            {
                "molecule": "Geomean",
                "average_relative_accuracy": self.geomean_average,
                "maximum_relative_accuracy": self.geomean_maximum,
            }
        )
        return table


def run_relative_accuracy(
    molecules: Sequence[str] = DEFAULT_SUITE,
    scale: ExperimentScale = QUICK,
    bond_lengths_per_molecule: Optional[int] = None,
    seed: int = 0,
    ansatz_reps: int = 1,
) -> RelativeAccuracyResult:
    """Compute the Fig. 13 relative-accuracy summary over a molecule suite."""
    num_lengths = bond_lengths_per_molecule or max(2, scale.bond_lengths_per_curve // 2)
    rows: List[RelativeAccuracyRow] = []
    for molecule_index, molecule in enumerate(molecules):
        preset = get_preset(molecule)
        if (preset.expected_qubits or 0) > 16:
            # No exact reference available; the paper likewise omits Cr2 here.
            continue
        low, high = preset.bond_length_range
        lengths = spread_bond_lengths(low, high, num_lengths)
        budget = scale.search_evaluations(preset.expected_qubits or 12)
        ratios: List[float] = []
        for length_index, bond_length in enumerate(lengths):
            evaluation = evaluate_molecule(
                molecule,
                bond_length=bond_length,
                max_evaluations=budget,
                seed=seed + 100 * molecule_index + length_index,
                ansatz_reps=ansatz_reps,
            )
            summary = evaluation.summary
            if summary.exact_energy is None:
                continue
            ratios.append(
                relative_accuracy(summary.cafqa_energy, summary.hf_energy, summary.exact_energy)
            )
        if not ratios:
            continue
        rows.append(
            RelativeAccuracyRow(
                molecule=molecule,
                average=sum(ratios) / len(ratios),
                maximum=max(ratios),
                bond_lengths=list(lengths),
                per_bond_length=ratios,
            )
        )
    return RelativeAccuracyResult(rows=rows)

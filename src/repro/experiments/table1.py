"""Table 1 — application characteristics of the molecule suite.

Builds each preset molecule at its equilibrium geometry and verifies the
qubit counts and orbital counts the preset table advertises, producing the
reproduction's version of the paper's Table 1.

With a ``search_evaluations`` budget the table additionally runs CAFQA at
equilibrium for every molecule, as one campaign sweep over the ``problem``
axis: every molecule shares the table's evaluation cache and memo directory,
so re-tabulating is a set of whole-run cache hits, and a single failing
molecule yields a row without a CAFQA energy instead of a dead table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.chemistry.molecules import available_molecules, get_preset, make_problem
from repro.runspec import RunSpec
from repro.sweepspec import SweepSpec, run_sweep


@dataclass
class Table1Row:
    molecule: str
    paper_counterpart: str
    num_qubits: int
    num_pauli_terms: int
    equilibrium_bond_length: float
    bond_length_range: tuple
    orbitals_total: Optional[int]
    orbitals_used: Optional[int]
    hf_energy: float
    exact_energy: Optional[float]
    cafqa_energy: Optional[float] = None


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def as_table(self) -> List[Dict[str, object]]:
        return [
            {
                "molecule": row.molecule,
                "paper_counterpart": row.paper_counterpart,
                "qubits": row.num_qubits,
                "pauli_terms": row.num_pauli_terms,
                "equilibrium_A": row.equilibrium_bond_length,
                "range_A": row.bond_length_range,
                "orbitals_total": row.orbitals_total,
                "orbitals_used": row.orbitals_used,
                "hf_energy": row.hf_energy,
                "exact_energy": row.exact_energy,
                "cafqa_energy": row.cafqa_energy,
            }
            for row in self.rows
        ]


def table1_sweepspec(
    molecules: Sequence[str],
    search_evaluations: int,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> SweepSpec:
    """The CAFQA-at-equilibrium sweep behind Table 1's energy column.

    One ``problem`` axis over the molecule names; ``derive_seeds=False``
    because the molecules are unrelated problems and each should search from
    the same base seed.  Exact energies come from the characteristics pass,
    so the swept runs skip them.
    """
    base = RunSpec(
        problem=str(molecules[0]),
        problem_options={"compute_exact": False},
        max_evaluations=int(search_evaluations),
        num_seeds=num_seeds,
        seed=seed,
        max_workers=max_workers,
    )
    return SweepSpec(
        base=base,
        axes={"problem": [str(name) for name in molecules]},
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
        derive_seeds=False,
        name="table1",
    )


def run_table1(
    molecules: Optional[Sequence[str]] = None,
    max_qubits_for_exact: int = 14,
    search_evaluations: Optional[int] = None,
    seed: int = 0,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Table1Result:
    """Build every preset at equilibrium and tabulate its characteristics.

    Without ``search_evaluations`` this is the pure characteristics table
    (no searches run).  With a budget, a campaign sweep over the molecule
    axis fills the ``cafqa_energy`` column; a molecule whose run fails keeps
    its characteristics row with ``cafqa_energy=None``.
    """
    names = list(molecules) if molecules is not None else available_molecules()
    cafqa_energies: Dict[str, float] = {}
    if search_evaluations is not None:
        sweep = table1_sweepspec(
            names,
            search_evaluations=search_evaluations,
            seed=seed,
            num_seeds=num_seeds,
            max_workers=max_workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
        )
        report = run_sweep(sweep, log=log)
        cafqa_energies = {str(run.coords["problem"]): run.energy for run in report.runs}
    rows: List[Table1Row] = []
    for name in names:
        preset = get_preset(name)
        compute_exact = (preset.expected_qubits or 99) <= max_qubits_for_exact
        problem = make_problem(name, compute_exact=compute_exact)
        rows.append(
            Table1Row(
                molecule=name,
                paper_counterpart=preset.paper_counterpart,
                num_qubits=problem.num_qubits,
                num_pauli_terms=problem.hamiltonian.num_terms,
                equilibrium_bond_length=preset.equilibrium_bond_length,
                bond_length_range=preset.bond_length_range,
                orbitals_total=preset.total_orbitals,
                orbitals_used=preset.used_orbitals,
                hf_energy=problem.hf_energy,
                exact_energy=problem.exact_energy,
                cafqa_energy=cafqa_energies.get(name),
            )
        )
    return Table1Result(rows=rows)

"""Table 1 — application characteristics of the molecule suite.

Builds each preset molecule at its equilibrium geometry and verifies the
qubit counts and orbital counts the preset table advertises, producing the
reproduction's version of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.chemistry.molecules import available_molecules, get_preset, make_problem


@dataclass
class Table1Row:
    molecule: str
    paper_counterpart: str
    num_qubits: int
    num_pauli_terms: int
    equilibrium_bond_length: float
    bond_length_range: tuple
    orbitals_total: Optional[int]
    orbitals_used: Optional[int]
    hf_energy: float
    exact_energy: Optional[float]


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def as_table(self) -> List[Dict[str, object]]:
        return [
            {
                "molecule": row.molecule,
                "paper_counterpart": row.paper_counterpart,
                "qubits": row.num_qubits,
                "pauli_terms": row.num_pauli_terms,
                "equilibrium_A": row.equilibrium_bond_length,
                "range_A": row.bond_length_range,
                "orbitals_total": row.orbitals_total,
                "orbitals_used": row.orbitals_used,
                "hf_energy": row.hf_energy,
                "exact_energy": row.exact_energy,
            }
            for row in self.rows
        ]


def run_table1(
    molecules: Optional[Sequence[str]] = None, max_qubits_for_exact: int = 14
) -> Table1Result:
    """Build every preset at equilibrium and tabulate its characteristics."""
    names = list(molecules) if molecules is not None else available_molecules()
    rows: List[Table1Row] = []
    for name in names:
        preset = get_preset(name)
        compute_exact = (preset.expected_qubits or 99) <= max_qubits_for_exact
        problem = make_problem(name, compute_exact=compute_exact)
        rows.append(
            Table1Row(
                molecule=name,
                paper_counterpart=preset.paper_counterpart,
                num_qubits=problem.num_qubits,
                num_pauli_terms=problem.hamiltonian.num_terms,
                equilibrium_bond_length=preset.equilibrium_bond_length,
                bond_length_range=preset.bond_length_range,
                orbitals_total=preset.total_orbitals,
                orbitals_used=preset.used_orbitals,
                hf_energy=problem.hf_energy,
                exact_energy=problem.exact_energy,
            )
        )
    return Table1Result(rows=rows)

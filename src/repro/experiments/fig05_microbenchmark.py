"""Fig. 5 — 2-qubit XX-Hamiltonian microbenchmark.

Sweeps the single tunable angle of a 2-qubit hardware-efficient ansatz for
the Hamiltonian ``H = XX`` on (a) an ideal machine, (b) two noisy fake
devices, reports the Hartree–Fock expectation (zero — the XX Hamiltonian has
no diagonal part), and the four discrete CAFQA Clifford points.  The
qualitative result to reproduce: CAFQA's best Clifford point reaches the
ideal global minimum (-1.0) while the noisy sweeps bottom out above it and HF
recovers nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.clifford_points import CLIFFORD_ANGLES
from repro.noise.devices import fake_device
from repro.operators.pauli_sum import PauliSum
from repro.stabilizer.simulator import StabilizerSimulator
from repro.statevector.density_matrix import DensityMatrixSimulator
from repro.statevector.simulator import StatevectorSimulator


def xx_hamiltonian() -> PauliSum:
    """The microbenchmark Hamiltonian, a single XX coupling."""
    return PauliSum({"XX": 1.0})


def microbenchmark_circuit(theta: float) -> QuantumCircuit:
    """2-qubit hardware-efficient ansatz with one tunable RY angle.

    RY(theta) followed by a CX prepares ``cos(theta/2)|00> + sin(theta/2)|11>``,
    whose XX expectation is ``sin(theta)`` — it sweeps the full [-1, 1] range
    and reaches the global minimum -1 at the Clifford angle ``3*pi/2``.
    """
    circuit = QuantumCircuit(2)
    circuit.ry(theta, 0)
    circuit.cx(0, 1)
    return circuit


@dataclass
class MicrobenchmarkResult:
    """All series of the Fig. 5 plot."""

    thetas: List[float]
    ideal: List[float]
    noisy: Dict[str, List[float]] = field(default_factory=dict)
    hartree_fock: float = 0.0
    cafqa_thetas: List[float] = field(default_factory=list)
    cafqa_values: List[float] = field(default_factory=list)

    @property
    def ideal_minimum(self) -> float:
        return min(self.ideal)

    @property
    def cafqa_minimum(self) -> float:
        return min(self.cafqa_values)

    def noisy_minimum(self, device: str) -> float:
        return min(self.noisy[device])


def run_microbenchmark(
    num_points: int = 33,
    devices: tuple[str, ...] = ("casablanca_like", "manhattan_like"),
) -> MicrobenchmarkResult:
    """Generate every series of Fig. 5."""
    hamiltonian = xx_hamiltonian()
    thetas = list(np.linspace(0.0, 2.0 * np.pi, num_points))

    ideal_backend = StatevectorSimulator()
    ideal = [
        float(ideal_backend.expectation(microbenchmark_circuit(theta), hamiltonian))
        for theta in thetas
    ]

    noisy: Dict[str, List[float]] = {}
    for device in devices:
        backend = DensityMatrixSimulator(fake_device(device))
        noisy[device] = [
            float(backend.expectation(microbenchmark_circuit(theta), hamiltonian))
            for theta in thetas
        ]

    # Hartree-Fock: the best computational-basis state.  XX has no diagonal
    # component, so every basis state gives expectation zero.
    hartree_fock = 0.0

    stabilizer = StabilizerSimulator()
    cafqa_values = [
        float(stabilizer.expectation(microbenchmark_circuit(theta), hamiltonian))
        for theta in CLIFFORD_ANGLES
    ]

    return MicrobenchmarkResult(
        thetas=thetas,
        ideal=ideal,
        noisy=noisy,
        hartree_fock=hartree_fock,
        cafqa_thetas=list(CLIFFORD_ANGLES),
        cafqa_values=cafqa_values,
    )

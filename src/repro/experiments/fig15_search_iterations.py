"""Fig. 15 — Bayesian-search iterations needed per VQA problem.

Counts the evaluation at which each molecule's CAFQA search last improved its
best energy ("iterations to converge to the lowest estimate").  The
qualitative result to reproduce: iteration counts grow with the number of
ansatz parameters (problem size), and remain modest compared to variational
tuning budgets on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.chemistry.molecules import get_preset, make_problem
from repro.core.orchestrator import SearchOrchestrator
from repro.experiments.config import ExperimentScale, QUICK

DEFAULT_SUITE = ("H2", "H4", "LiH", "H6", "H2O", "N2", "BeH2")


@dataclass
class SearchIterationRow:
    molecule: str
    num_qubits: int
    num_parameters: int
    total_evaluations: int
    converged_iteration: int
    final_energy: float
    hf_energy: float


@dataclass
class SearchIterationsResult:
    rows: List[SearchIterationRow]

    @property
    def mean_converged_iteration(self) -> float:
        return sum(row.converged_iteration for row in self.rows) / len(self.rows)

    def as_table(self) -> List[Dict[str, object]]:
        return [
            {
                "molecule": row.molecule,
                "qubits": row.num_qubits,
                "parameters": row.num_parameters,
                "iterations_to_converge": row.converged_iteration,
                "total_evaluations": row.total_evaluations,
            }
            for row in self.rows
        ]


def run_search_iterations(
    molecules: Sequence[str] = DEFAULT_SUITE,
    scale: ExperimentScale = QUICK,
    bond_length_factor: float = 1.5,
    seed: int = 0,
    max_qubits: Optional[int] = 14,
    num_seeds: int = 1,
    max_workers: Optional[int] = None,
) -> SearchIterationsResult:
    """Run a CAFQA search per molecule (at a stretched geometry) and record iterations.

    With ``num_seeds > 1`` the reported convergence iteration is the winning
    restart's, matching the paper's per-problem best-of-many-seeds counts.
    """
    rows: List[SearchIterationRow] = []
    for index, molecule in enumerate(molecules):
        preset = get_preset(molecule)
        if max_qubits is not None and (preset.expected_qubits or 0) > max_qubits:
            continue
        bond_length = min(
            preset.equilibrium_bond_length * bond_length_factor, preset.bond_length_range[1]
        )
        problem = make_problem(molecule, bond_length, compute_exact=False)
        budget = scale.search_evaluations(problem.num_qubits)
        orchestrator = SearchOrchestrator(
            problem, num_restarts=num_seeds, max_workers=max_workers, seed=seed + index
        )
        multi = orchestrator.run(max_evaluations=budget)
        rows.append(
            SearchIterationRow(
                molecule=molecule,
                num_qubits=problem.num_qubits,
                num_parameters=orchestrator.ansatz.num_parameters,
                total_evaluations=multi.best.num_iterations,
                converged_iteration=multi.best.converged_iteration,
                final_energy=multi.best.energy,
                hf_energy=problem.hf_energy,
            )
        )
    return SearchIterationsResult(rows=rows)

"""Legacy installation shim.

Offline environments sometimes lack the ``wheel`` package that PEP 517
editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-use-pep517``) keeps working through this shim.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

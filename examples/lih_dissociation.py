#!/usr/bin/env python3
"""LiH dissociation curve: CAFQA vs Hartree-Fock vs exact (the paper's Fig. 9).

Sweeps the Li-H bond length, runs the CAFQA Clifford search at each geometry,
and prints the three energy curves together with the error and the recovered
correlation energy.  Expect CAFQA to track Hartree-Fock near equilibrium and
to pull well below it (toward the exact curve) at stretched geometries.

Run:  python examples/lih_dissociation.py [num_points] [search_budget] [num_seeds]

With ``num_seeds > 1`` every bond length runs a best-of-N-restarts search
sharded across worker processes (see examples/multi_seed_search.py).
"""

import sys

from repro.core import AccuracySummary, dissociation_curve


def main() -> None:
    num_points = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 250
    num_seeds = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    low, high = 1.2, 4.4
    bond_lengths = [round(low + i * (high - low) / (num_points - 1), 2) for i in range(num_points)]
    print(
        f"LiH dissociation at {bond_lengths} A "
        f"(search budget {budget} per point, {num_seeds} restart(s))"
    )

    evaluations = dissociation_curve(
        "LiH", bond_lengths, max_evaluations=budget, seed=0, ansatz_reps=2,
        num_seeds=num_seeds,
    )

    header = f"{'R (A)':>6} {'HF':>12} {'CAFQA':>12} {'exact':>12} {'HF err':>10} {'CAFQA err':>10} {'corr %':>7}"
    print(header)
    print("-" * len(header))
    for evaluation in evaluations:
        summary: AccuracySummary = evaluation.summary
        print(
            f"{summary.bond_length:6.2f} {summary.hf_energy:12.6f} {summary.cafqa_energy:12.6f} "
            f"{summary.exact_energy:12.6f} {summary.hf_error:10.2e} {summary.cafqa_error:10.2e} "
            f"{summary.recovered_correlation:7.1f}"
        )

    worst = min(e.summary.recovered_correlation for e in evaluations)
    print(f"\nCAFQA recovered at least {worst:.1f}% of the correlation energy at every geometry,")
    print("and was never worse than the Hartree-Fock initialization.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""LiH dissociation curve as a declarative campaign (the paper's Fig. 9).

Declares the bond-length sweep as one :class:`repro.SweepSpec` and executes
it with :func:`repro.run_sweep`: every point runs a best-of-N-restarts CAFQA
search through the fault-tolerant orchestrator, all points share one
evaluation cache, and completed points leave digest-keyed memo records.
Re-running the example against the same work directory replays every
finished point as a whole-run "cache hit" instead of searching again — kill
it mid-sweep and the resubmission picks up where it stopped.

Expect CAFQA to track Hartree-Fock near equilibrium and to pull well below
it (toward the exact curve) at stretched geometries.

Run:  python examples/lih_dissociation.py [num_points] [search_budget] [num_seeds] [workdir]

Environment: REPRO_EXAMPLE_EVALS / REPRO_EXAMPLE_SEEDS override the budget
and restart count (CI smoke runs use tiny values).
"""

import os
import sys

import repro


def main() -> None:
    num_points = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    budget = int(
        sys.argv[2] if len(sys.argv) > 2 else os.environ.get("REPRO_EXAMPLE_EVALS", "250")
    )
    num_seeds = int(
        sys.argv[3] if len(sys.argv) > 3 else os.environ.get("REPRO_EXAMPLE_SEEDS", "1")
    )
    workdir = sys.argv[4] if len(sys.argv) > 4 else None

    low, high = 1.2, 4.4
    bond_lengths = [
        round(low + i * (high - low) / (num_points - 1), 2) for i in range(num_points)
    ]
    print(
        f"LiH dissociation at {bond_lengths} A "
        f"(search budget {budget} per point, {num_seeds} restart(s))"
    )

    sweep = repro.SweepSpec(
        base=repro.RunSpec(
            problem="LiH",
            ansatz_reps=2,
            max_evaluations=budget,
            num_seeds=num_seeds,
            seed=0,
        ),
        axes={"problem_options.bond_length": bond_lengths},
        cache_dir=os.path.join(workdir, "cache") if workdir else None,
        checkpoint_dir=os.path.join(workdir, "checkpoints") if workdir else None,
        name="example:LiH-dissociation",
    )
    report = repro.run_sweep(sweep, log=print)

    header = (
        f"{'R (A)':>6} {'HF':>12} {'CAFQA':>12} {'exact':>12} "
        f"{'err':>10} {'memo':>5}"
    )
    print(header)
    print("-" * len(header))
    for row in report.as_table():
        print(
            f"{row['problem_options.bond_length']:6.2f} {row['reference_energy']:12.6f} "
            f"{row['energy']:12.6f} {row['exact_energy']:12.6f} "
            f"{row['error']:10.2e} {'yes' if row['memoized'] else 'no':>5}"
        )

    improvements = [run.summary["improvement_over_reference"] for run in report.runs]
    print(
        f"\n{report.num_completed}/{report.num_points} points completed, "
        f"{report.num_memoized} replayed from memo records."
    )
    print(
        f"CAFQA was never worse than Hartree-Fock "
        f"(best improvement {max(improvements):.6f} Ha)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-seed CAFQA search: parallel restarts, caching, and checkpoint/resume.

The paper's reported energies come from best-of-many-restart searches.  A
single ``repro.run`` call with ``num_seeds=N`` shards N independent restarts
(distinct warm-up seeds) across worker processes, prints the per-seed
spread, and demonstrates resume: run it twice with the same ``checkpoint``
directory and the second run loads every restart from its checkpoint
instead of recomputing — the spec's ``options_digest`` is what validates
the stored checkpoints.

Run:  python examples/multi_seed_search.py [num_seeds] [num_workers] [checkpoint_dir]

Environment: REPRO_EXAMPLE_EVALS / REPRO_EXAMPLE_SEEDS override the budget
and restart count (CI smoke runs set tiny values).
"""

import os
import sys

import repro


def main() -> None:
    num_seeds = int(
        sys.argv[1] if len(sys.argv) > 1 else os.environ.get("REPRO_EXAMPLE_SEEDS", "4")
    )
    num_workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    checkpoint_dir = sys.argv[3] if len(sys.argv) > 3 else None
    budget = int(os.environ.get("REPRO_EXAMPLE_EVALS", "120"))

    spec = repro.RunSpec(
        problem="H2",
        problem_options={"bond_length": 2.5},
        max_evaluations=budget,
        num_seeds=num_seeds,
        max_workers=num_workers,
        seed=0,
        checkpoint_dir=checkpoint_dir,
    )
    print(f"Running {spec!r}")
    print(f"  (workers={'auto' if num_workers is None else num_workers}, "
          f"options digest {spec.options_digest()})")
    report = repro.run(spec)
    result = report.result

    print(f"{'seed':>22} {'energy (Ha)':>14} {'iters':>6} {'resumed':>8}")
    for trace in result.traces:
        print(
            f"{trace.seed:>22} {trace.energy:>14.6f} {trace.num_iterations:>6} "
            f"{'yes' if trace.from_checkpoint else 'no':>8}"
        )

    print(f"\nbest    : {report.energy:.6f} Ha (restart {result.best_trace.restart_index})")
    print(f"mean/std: {result.mean_energy:.6f} / {result.std_energy:.2e} Ha")
    print(f"HF      : {report.reference_energy:.6f} Ha")
    if report.exact_energy is not None:
        print(f"exact   : {report.exact_energy:.6f} Ha (error {report.error:.2e} Ha)")
    if checkpoint_dir:
        print(f"\nCheckpoints in {checkpoint_dir!r}; rerun this command to resume from them.")


if __name__ == "__main__":
    main()

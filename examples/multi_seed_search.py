#!/usr/bin/env python3
"""Multi-seed CAFQA search: parallel restarts, caching, and checkpoint/resume.

The paper's reported energies come from best-of-many-restart searches.  This
example shards N independent restarts (distinct warm-up seeds) across worker
processes with :class:`repro.core.SearchOrchestrator`, prints the per-seed
spread, and demonstrates resume: run it twice with the same ``--checkpoint``
directory and the second run loads every restart from its checkpoint instead
of recomputing.

Run:  python examples/multi_seed_search.py [num_seeds] [num_workers] [checkpoint_dir]
"""

import sys

from repro.chemistry import make_problem
from repro.core import SearchOrchestrator


def main() -> None:
    num_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    num_workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    checkpoint_dir = sys.argv[3] if len(sys.argv) > 3 else None

    bond_length = 2.5
    print(f"Building the H2 problem at {bond_length:.2f} A ...")
    problem = make_problem("H2", bond_length)

    print(f"Running {num_seeds} independent CAFQA restarts "
          f"(workers={'auto' if num_workers is None else num_workers}) ...")
    orchestrator = SearchOrchestrator(
        problem,
        num_restarts=num_seeds,
        max_workers=num_workers,
        seed=0,
    )
    result = orchestrator.run(max_evaluations=120, checkpoint_dir=checkpoint_dir)

    print(f"{'seed':>22} {'energy (Ha)':>14} {'iters':>6} {'resumed':>8}")
    for trace in result.traces:
        print(
            f"{trace.seed:>22} {trace.energy:>14.6f} {trace.num_iterations:>6} "
            f"{'yes' if trace.from_checkpoint else 'no':>8}"
        )

    print(f"\nbest    : {result.best.energy:.6f} Ha (restart {result.best_trace.restart_index})")
    print(f"mean/std: {result.mean_energy:.6f} / {result.std_energy:.2e} Ha")
    print(f"HF      : {result.hf_energy:.6f} Ha")
    if result.exact_energy is not None:
        print(f"exact   : {result.exact_energy:.6f} Ha (error {result.error:.2e} Ha)")
    if checkpoint_dir:
        print(f"\nCheckpoints in {checkpoint_dir!r}; rerun this command to resume from them.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Excited-CAFQA: the lowest-k states of a spin chain by sequential deflation.

Setting ``num_states`` on a :class:`repro.RunSpec` turns the run into a
spectrum search: after each level is found, the next search minimizes
``H + w * sum_k |psi_k><psi_k|``, with the overlap penalties evaluated by the
polynomial stabilizer overlap kernel (never a 2^n projector expansion).
Every level is a full multi-seed orchestrated search sharing one
cache/checkpoint namespace, so spectrum runs resume bit-identically too.

The default workload is a classical Ising chain (transverse_field=0), whose
eigenstates are computational basis states — there the deflated search
reproduces the dense-diagonalization spectrum exactly, degeneracies included.

Run:  python examples/excited_states.py [num_sites]

Environment: REPRO_EXAMPLE_EVALS / REPRO_EXAMPLE_SEEDS / REPRO_EXAMPLE_STATES
override the per-level budget, restart count, and number of levels (CI smoke
runs set tiny values so this example stays fast and can't rot).
"""

import os
import sys

import repro


def main() -> None:
    num_sites = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    budget = int(os.environ.get("REPRO_EXAMPLE_EVALS", "120"))
    seeds = int(os.environ.get("REPRO_EXAMPLE_SEEDS", "2"))
    num_states = int(os.environ.get("REPRO_EXAMPLE_STATES", "3"))

    spec = repro.RunSpec(
        problem="ising_chain",
        problem_options={"num_sites": num_sites, "transverse_field": 0.0},
        max_evaluations=budget,
        num_seeds=seeds,
        seed=0,
        num_states=num_states,
    )
    print(f"Running {spec!r}")
    report = repro.run(spec)

    print(f"  qubits            : {report.problem.num_qubits}")
    print(f"  levels            : {report.states.num_states}")
    print(f"  deflation weight  : {report.states.deflation_weight}")
    exact = report.exact_spectrum or [None] * report.states.num_states
    print("  level |   CAFQA E   |   exact E   |  |error|")
    for level, reference in zip(report.states.levels, exact):
        if reference is None:
            print(f"    {level.level}   | {level.energy:+.6f}  |     n/a     |    n/a")
        else:
            print(
                f"    {level.level}   | {level.energy:+.6f}  | {reference:+.6f}  | "
                f"{abs(level.energy - reference):.2e}"
            )

    print("\nEach level re-ran the search with the previously found states")
    print("deflated; per-level best Clifford points:")
    for level in report.states.levels:
        print(f"    level {level.level}: {tuple(level.indices)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Post-CAFQA VQE on a noisy device: faster convergence from a better start (Fig. 14).

Runs the full CAFQA-then-VQE pipeline for H2 at a stretched geometry:

1. find the CAFQA Clifford initialization through the unified front door
   (``repro.run``, which also builds the qubit Hamiltonian),
2. tune the ansatz with SPSA on an ideal simulator and on a noisy fake device,
   starting from either the CAFQA point or the Hartree-Fock point.

Expect the CAFQA-initialized runs to start at a lower energy and to reach the
Hartree-Fock run's final energy in fewer iterations.

Run:  python examples/noisy_vqe_bootstrap.py [bond_length] [vqe_iterations]

Environment: REPRO_EXAMPLE_EVALS overrides the search budget (CI smoke runs
set a tiny value).
"""

import os
import sys

import repro
from repro.core import VQERunner
from repro.noise import fake_device
from repro.optim import SPSA


def main() -> None:
    bond_length = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    vqe_iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    budget = int(os.environ.get("REPRO_EXAMPLE_EVALS", "120"))

    print(f"H2 at {bond_length:.2f} A")
    report = repro.run(
        repro.RunSpec(
            problem="H2",
            problem_options={"bond_length": bond_length},
            max_evaluations=budget,
            seed=0,
        )
    )
    problem, cafqa = report.problem, report.best
    print(f"  Hartree-Fock : {report.reference_energy:.6f} Ha")
    print(f"  exact        : {report.exact_energy:.6f} Ha")
    print(f"  CAFQA        : {cafqa.energy:.6f} Ha  ({cafqa.num_iterations} classical iterations)\n")

    for backend_name, noise in (("ideal simulator", None), ("noisy fake device", fake_device("casablanca_like"))):
        runner = VQERunner(problem, ansatz=cafqa.ansatz, noise_model=noise, optimizer=SPSA(seed=1))
        from_cafqa = runner.run_from_cafqa(cafqa, max_iterations=vqe_iterations)
        from_hf = runner.run_from_hartree_fock(max_iterations=vqe_iterations)

        print(f"[{backend_name}]")
        print(
            f"  start: CAFQA {from_cafqa.initial_energy:.6f} Ha   "
            f"HF {from_hf.initial_energy:.6f} Ha"
        )
        print(
            f"  final: CAFQA {from_cafqa.final_energy:.6f} Ha   "
            f"HF {from_hf.final_energy:.6f} Ha"
        )
        threshold = from_hf.final_energy
        cafqa_iters = from_cafqa.iterations_to_reach(threshold)
        hf_iters = from_hf.iterations_to_reach(threshold)
        if cafqa_iters is not None and hf_iters is not None:
            print(
                f"  iterations to reach HF's final energy: CAFQA {cafqa_iters} vs HF {hf_iters} "
                f"({hf_iters / max(cafqa_iters, 1):.1f}x speedup)"
            )
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: CAFQA initialization for H2 ground-state estimation.

Builds the H2 qubit Hamiltonian from scratch (STO-3G integrals, Hartree-Fock,
parity mapping with two-qubit reduction), searches the Clifford space of a
hardware-efficient ansatz with Bayesian optimization, and compares the CAFQA
initialization against Hartree-Fock and the exact ground state.

Run:  python examples/quickstart.py [bond_length_in_angstrom]
"""

import sys

from repro.chemistry import make_problem
from repro.core import CafqaSearch, correlation_energy_recovered, relative_accuracy


def main() -> None:
    bond_length = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0

    print(f"Building the H2 problem at {bond_length:.2f} A ...")
    problem = make_problem("H2", bond_length)
    print(f"  qubits          : {problem.num_qubits}")
    print(f"  Pauli terms     : {problem.hamiltonian.num_terms}")
    print(f"  Hartree-Fock    : {problem.hf_energy:.6f} Ha")
    print(f"  exact (FCI)     : {problem.exact_energy:.6f} Ha")

    print("Searching the Clifford space (Bayesian optimization + refinement) ...")
    search = CafqaSearch(problem, seed=0)
    result = search.run(max_evaluations=150)

    print(f"  CAFQA energy    : {result.energy:.6f} Ha")
    print(f"  search iterations: {result.num_iterations}")
    print(f"  Clifford angles : {[round(a, 3) for a in result.best_angles]}")

    recovered = correlation_energy_recovered(
        result.energy, problem.hf_energy, problem.exact_energy
    )
    ratio = relative_accuracy(result.energy, problem.hf_energy, problem.exact_energy)
    print(f"  correlation energy recovered : {recovered:.1f}%")
    print(f"  error reduction vs HF        : {ratio:.1f}x")

    print("The Clifford-initialized circuit (ready for VQE tuning on a device):")
    print(result.circuit.draw())

    print("\nFor best-of-N-restart searches sharded across worker processes")
    print("(with evaluation caching and checkpoint/resume), go through the")
    print("orchestrator — see examples/multi_seed_search.py:")
    print("    from repro.core import SearchOrchestrator")
    print("    multi = SearchOrchestrator(problem, num_restarts=8, seed=0).run(")
    print("        max_evaluations=150, checkpoint_dir='h2_checkpoints')")
    print("    best = multi.best  # a CafqaResult, as above")


if __name__ == "__main__":
    main()

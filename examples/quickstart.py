#!/usr/bin/env python3
"""Quickstart: CAFQA initialization for H2 through the unified front door.

One ``repro.run`` call builds the H2 qubit Hamiltonian from scratch (STO-3G
integrals, Hartree-Fock, parity mapping with two-qubit reduction), searches
the Clifford space of a hardware-efficient ansatz with Bayesian
optimization, and reports the CAFQA initialization against Hartree-Fock and
the exact ground state.  The same entrypoint runs any registered problem —
try ``problem="ising_chain"`` or ``problem="maxcut_ring"``.

Run:  python examples/quickstart.py [bond_length_in_angstrom]

Environment: REPRO_EXAMPLE_EVALS overrides the search budget (CI smoke runs
set a tiny value so this example stays fast and can't rot).
"""

import os
import sys

import repro
from repro.core import correlation_energy_recovered, relative_accuracy


def main() -> None:
    bond_length = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    budget = int(os.environ.get("REPRO_EXAMPLE_EVALS", "150"))

    spec = repro.RunSpec(
        problem="H2",
        problem_options={"bond_length": bond_length},
        max_evaluations=budget,
        seed=0,
    )
    print(f"Running {spec!r}")
    report = repro.run(spec)

    problem = report.problem
    print(f"  qubits           : {problem.num_qubits}")
    print(f"  Pauli terms      : {problem.hamiltonian.num_terms}")
    print(f"  Hartree-Fock     : {report.reference_energy:.6f} Ha")
    print(f"  exact (FCI)      : {report.exact_energy:.6f} Ha")
    print(f"  CAFQA energy     : {report.energy:.6f} Ha")
    print(f"  search iterations: {report.result.total_evaluations}")

    recovered = correlation_energy_recovered(
        report.energy, report.reference_energy, report.exact_energy
    )
    ratio = relative_accuracy(report.energy, report.reference_energy, report.exact_energy)
    print(f"  correlation energy recovered : {recovered:.1f}%")
    print(f"  error reduction vs HF        : {ratio:.1f}x")

    print("The Clifford-initialized circuit (ready for VQE tuning on a device):")
    print(report.best.circuit.draw())

    print("\nEverything is declarative: the spec round-trips through JSON")
    print("(repro.RunSpec.from_json(spec.to_json())), and adding")
    print("num_seeds=8, checkpoint_dir='ckpt' turns the same call into a")
    print("best-of-8-restarts search with resume — see")
    print("examples/multi_seed_search.py.  Registered problems:")
    print(f"    {', '.join(repro.problems.list_problems())}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Beyond Clifford: adding a handful of T gates to the CAFQA ansatz (Fig. 16).

At intermediate bond lengths the best Clifford (stabilizer) state can sit
noticeably above the exact ground state.  Allowing a small number of T gates
(angles at odd multiples of pi/4) extends the reachable states while the
circuit remains classically simulable via a 2^k-branch stabilizer expansion.

Run:  python examples/clifford_t_extension.py [bond_length] [max_t_gates]
"""

import sys

from repro.chemistry import make_problem
from repro.core import CafqaSearch, CliffordTSearch, correlation_energy_recovered


def main() -> None:
    bond_length = float(sys.argv[1]) if len(sys.argv) > 1 else 1.5
    max_t_gates = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    problem = make_problem("H2", bond_length)
    print(f"H2 at {bond_length:.2f} A   (HF {problem.hf_energy:.6f} Ha, exact {problem.exact_energy:.6f} Ha)")

    clifford_search = CafqaSearch(problem, seed=0)
    clifford = clifford_search.run(max_evaluations=120)
    clifford_corr = correlation_energy_recovered(
        clifford.energy, problem.hf_energy, problem.exact_energy
    )
    print(f"Clifford-only CAFQA : {clifford.energy:.6f} Ha  ({clifford_corr:.1f}% correlation recovered)")

    t_search = CliffordTSearch(
        problem,
        max_t_gates=max_t_gates,
        ansatz=clifford_search.ansatz,
        seed=0,
        seed_point=[2 * index for index in clifford.best_indices],
    )
    clifford_t = t_search.run(max_evaluations=200)
    best_energy = min(clifford_t.energy, clifford.energy)
    t_corr = correlation_energy_recovered(best_energy, problem.hf_energy, problem.exact_energy)
    print(
        f"CAFQA + <= {max_t_gates}T       : {best_energy:.6f} Ha  "
        f"({t_corr:.1f}% correlation recovered, {clifford_t.num_t_gates} T gate(s) used)"
    )
    print(f"Branches simulated per evaluation: {2 ** clifford_t.num_t_gates}")


if __name__ == "__main__":
    main()
